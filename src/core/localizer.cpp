#include "core/localizer.hpp"

#include <chrono>

#include "map/map_service.hpp"
#include "runtime/solve_hub.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

LocalizerConfig
configForScenario(SceneType scene)
{
    LocalizerConfig cfg;
    cfg.mode = preferredMode(scene);
    cfg.use_gps = scenarioTraits(scene).gps_available;
    return cfg;
}

Localizer::Localizer(const LocalizerConfig &cfg, const StereoRig &rig,
                     const Vocabulary *vocabulary, const Map *prior_map)
    : cfg_(cfg), rig_(rig), voc_(vocabulary), frontend_(cfg.frontend),
      health_(cfg.health), reckoner_(cfg.dead_reckoning),
      mode_(cfg.mode)
{
    // The prior map is retained in every mode so a later
    // requestModeSwitch(Registration) can attach to it.
    if (prior_map)
        registration_map_ = prior_map;
    switch (cfg_.mode) {
      case BackendMode::Vio:
        msckf_ = std::make_unique<Msckf>(rig_, cfg_.msckf);
        if (cfg_.use_gps)
            fusion_ = std::make_unique<GpsFusion>(cfg_.fusion);
        break;
      case BackendMode::Slam:
        mapper_ = std::make_unique<Mapper>(rig_, voc_, cfg_.mapping);
        slam_tracker_ = std::make_unique<Tracker>(
            &mapper_->map(), voc_, rig_.cam, rig_.body_from_camera,
            cfg_.tracking);
        break;
      case BackendMode::Registration:
        assert(prior_map && "registration mode requires a map");
        registration_map_ = prior_map;
        reg_tracker_ = std::make_unique<Tracker>(
            registration_map_, voc_, rig_.cam, rig_.body_from_camera,
            cfg_.tracking);
        // The shared prior map is immutable: the projection kernel's
        // homogeneous point matrix can persist across frames.
        reg_tracker_->setStaticMap(true);
        break;
    }
}

Localizer::~Localizer() = default;

void
Localizer::setSolveHub(SolveHub *hub)
{
    hub_ = hub;
    if (msckf_)
        msckf_->setSolveHub(hub);
    if (reg_tracker_)
        reg_tracker_->setSolveHub(hub);
    if (slam_tracker_)
        slam_tracker_->setSolveHub(hub);
    if (mapper_)
        mapper_->setSolveHub(hub);
}

void
Localizer::initialize(const Pose &start_pose, double t,
                      const Vec3 &start_velocity)
{
    if (cfg_.mode == BackendMode::Vio)
        msckf_->initialize(start_pose, t, start_velocity);
    last_pose_ = start_pose;
    prev_pose_.reset();
    last_frame_t_ = t;
    health_.reset();
    reckoner_.seed(start_pose, t, start_velocity);
    initialized_ = true;
}

const Map *
Localizer::currentMap() const
{
    if (cfg_.mode == BackendMode::Slam)
        return &mapper_->map();
    if (cfg_.mode == BackendMode::Registration)
        return map_epoch_ ? &map_epoch_->map : registration_map_;
    return nullptr;
}

void
Localizer::attachMapService(MapService *service)
{
    map_service_ = service;
    if (!service) {
        map_session_key_ = -1;
        if (mapper_)
            mapper_->setRetireLog(false);
        return;
    }
    map_session_key_ = service->registerSession();
    if (mapper_)
        mapper_->setRetireLog(true);
    refreshMapEpoch();
}

void
Localizer::refreshMapEpoch()
{
    if (!map_service_)
        return;
    const auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<const MapEpoch> e = map_service_->currentEpoch();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    double prev = epoch_acquire_max_ms_.load(std::memory_order_relaxed);
    while (ms > prev && !epoch_acquire_max_ms_.compare_exchange_weak(
                            prev, ms, std::memory_order_relaxed)) {
    }
    if (!e || e == map_epoch_ || e->map.pointCount() == 0)
        return; // no newer usable snapshot: keep tracking the pinned one
    map_epoch_ = std::move(e);
    map_epoch_seq_.store(map_epoch_->epoch, std::memory_order_relaxed);
    if (reg_tracker_)
        reg_tracker_->retarget(&map_epoch_->map);
}

void
Localizer::contributeRetiredKeyframes()
{
    if (!map_service_ || !mapper_)
        return;
    std::vector<int> retired = mapper_->drainRetiredKeyframes();
    if (retired.empty())
        return;
    const Map &m = mapper_->map();
    MapContribution c;
    c.keyframes.reserve(retired.size());
    for (int kf_id : retired) {
        const Keyframe &kf = m.keyframes()[kf_id];
        c.keyframes.push_back(kf); // id doubles as the session-local seq
        for (int lm : kf.map_point_ids)
            if (lm >= 0)
                c.points.emplace_back(lm, m.points()[lm]);
    }
    map_service_->contribute(map_session_key_, std::move(c));
    map_contributions_.fetch_add(1, std::memory_order_relaxed);
}

LocalizationResult
Localizer::rejectFrame(int frame_index) const
{
    LocalizationResult res;
    res.frame_index = frame_index;
    res.mode = cfg_.mode;
    res.ok = false;
    return res;
}

FrontendOutput
Localizer::runFrontend(const ImageU8 &left, const ImageU8 &right)
{
    return frontend_.processFrame(left, right);
}

void
Localizer::runFrontendFe(const ImageU8 &left, const ImageU8 &right,
                         FrontendStageContext &ctx, FrontendOutput &out)
{
    frontend_.runFeStage(left, right, ctx, out);
}

void
Localizer::runFrontendSm(const ImageU8 &left, const ImageU8 &right,
                         FrontendStageContext &ctx, FrontendOutput &out)
{
    frontend_.runSmStage(left, right, ctx, out);
}

void
Localizer::runFrontendTm(const ImageU8 &left, FrontendStageContext &ctx,
                         FrontendOutput &out)
{
    frontend_.runTmStage(left, ctx, out);
}

bool
Localizer::requestModeSwitch(BackendMode target,
                             const MappingConfig *mapping)
{
    if (target == mode_.load(std::memory_order_relaxed))
        return false;
    if (target == BackendMode::Registration && !registration_map_)
        return false;
    std::lock_guard<std::mutex> lk(switch_m_);
    pending_switch_ = PendingSwitch{
        target, mapping ? std::optional<MappingConfig>(*mapping)
                        : std::nullopt};
    return true;
}

void
Localizer::applyModeSwitch(BackendMode target,
                           const std::optional<MappingConfig> &mapping)
{
    switch (target) {
      case BackendMode::Vio:
        // A fresh filter anchored at the running estimate: the standard
        // re-initialization of a deployed system leaving a mapped
        // space. The track manager restarts (feature tracks of the old
        // mode never fed the filter).
        msckf_ = std::make_unique<Msckf>(rig_, cfg_.msckf);
        if (hub_)
            msckf_->setSolveHub(hub_);
        if (cfg_.use_gps && !fusion_)
            fusion_ = std::make_unique<GpsFusion>(cfg_.fusion);
        msckf_->initialize(last_pose_.value_or(Pose::identity()),
                           last_frame_t_);
        track_manager_ = FeatureTrackManager{};
        next_clone_id_ = 0;
        break;
      case BackendMode::Slam: {
        // A fresh map bootstrapped from the current pose (the space is
        // by definition unmapped — that is why the session is
        // switching). An override config ships with the switch so the
        // new space's keyframing policy applies from frame one.
        if (mapping)
            cfg_.mapping = *mapping;
        mapper_ = std::make_unique<Mapper>(rig_, voc_, cfg_.mapping);
        slam_tracker_ = std::make_unique<Tracker>(
            &mapper_->map(), voc_, rig_.cam, rig_.body_from_camera,
            cfg_.tracking);
        if (hub_) {
            mapper_->setSolveHub(hub_);
            slam_tracker_->setSolveHub(hub_);
        }
        if (map_service_)
            mapper_->setRetireLog(true);
        break;
      }
      case BackendMode::Registration:
        if (!reg_tracker_) {
            reg_tracker_ = std::make_unique<Tracker>(
                registration_map_, voc_, rig_.cam,
                rig_.body_from_camera, cfg_.tracking);
            reg_tracker_->setStaticMap(true);
            if (hub_)
                reg_tracker_->setSolveHub(hub_);
            if (map_epoch_)
                reg_tracker_->retarget(&map_epoch_->map);
        }
        break;
    }
    // The CV prediction seeded from the pre-switch history stays valid:
    // the switch moves the backend, not the platform.
    cfg_.mode = target;
    mode_.store(target, std::memory_order_relaxed);
}

void
Localizer::waitFinishedBefore(long seq)
{
    std::unique_lock<std::mutex> lk(finish_m_);
    finish_cv_.wait(lk, [&] { return finished_seq_ >= seq; });
}

void
Localizer::markFinished()
{
    {
        std::lock_guard<std::mutex> lk(finish_m_);
        ++finished_seq_;
    }
    finish_cv_.notify_all();
}

void
Localizer::updatePoseHistory(const LocalizationResult &res)
{
    if (res.ok) {
        prev_pose_ = last_pose_;
        last_pose_ = res.pose;
    }
}

void
Localizer::runBackendSolve(const FrameInput &input, const FrontendOutput &fe,
                           BackendStageContext &ctx)
{
    ctx.seq = backend_seq_++;
    if (!initialized_) {
        ctx.mode = cfg_.mode;
        ctx.res = rejectFrame(input.frame_index);
        ctx.rejected = true;
        return;
    }

    // Consume a deferred mode switch at the frame boundary. The
    // previous frame's finish must have fully published first — it
    // owns part of the pose history (VIO fusion) and the old mode's
    // structural state — so join it before tearing anything down.
    std::optional<PendingSwitch> sw;
    {
        std::lock_guard<std::mutex> lk(switch_m_);
        if (pending_switch_) {
            sw = std::move(*pending_switch_);
            pending_switch_.reset();
        }
    }
    if (sw && sw->target != cfg_.mode) {
        waitFinishedBefore(ctx.seq);
        applyModeSwitch(sw->target, sw->mapping);
    }

    // Adopt a newer shared-map epoch at the frame boundary, before the
    // solve reads the map — the deferred-application discipline that
    // keeps epoch swaps invisible to an in-flight frame.
    if (map_service_ && cfg_.mode == BackendMode::Registration)
        refreshMapEpoch();

    ctx.mode = cfg_.mode;
    switch (cfg_.mode) {
      case BackendMode::Vio:
        processVioSolve(input, fe, ctx);
        break;
      case BackendMode::Slam:
        processSlamSolve(input, fe, ctx);
        break;
      case BackendMode::Registration:
        processRegistrationSolve(input, fe, ctx);
        break;
    }
}

LocalizationResult
Localizer::runBackendFinish(const FrameInput &input, const FrontendOutput &fe,
                            BackendStageContext &ctx)
{
    if (ctx.rejected) {
        markFinished();
        return std::move(ctx.res);
    }
    // Dispatch on the mode the frame *solved* under: finish(N) may
    // overlap solve(N+1), and solve(N+1) may have switched modes.
    switch (ctx.mode) {
      case BackendMode::Vio:
        processVioFinish(input, fe, ctx);
        break;
      case BackendMode::Slam:
        processSlamFinish(ctx);
        break;
      case BackendMode::Registration:
        break; // tracking completes in the solve sub-stage
    }
    ctx.res.frame_index = input.frame_index;
    ctx.res.mode = ctx.mode;
    ctx.res.telemetry.frontend = fe.timing;
    ctx.res.telemetry.frontend_workload = fe.workload;
    last_frame_t_ = input.t;
    markFinished();
    return std::move(ctx.res);
}

LocalizationResult
Localizer::runBackend(const FrameInput &input, const FrontendOutput &fe)
{
    BackendStageContext ctx;
    runBackendSolve(input, fe, ctx);
    return runBackendFinish(input, fe, ctx);
}

LocalizationResult
Localizer::processFrame(const FrameInput &input)
{
    // Frames before initialize() cannot be localized; report failure
    // rather than asserting so release builds degrade gracefully.
    if (!initialized_)
        return rejectFrame(input.frame_index);

    // A frame with no imagery at all (camera dropout). With the
    // fallback enabled the session dead-reckons through it; otherwise
    // the legacy reject path.
    if (!input.hasImages()) {
        if (cfg_.health.enable_fallback)
            return deadReckonFrame(input);
        return rejectFrame(input.frame_index);
    }

    FrontendOutput fe = runFrontend(input.left, input.right);
    return runBackend(input, fe);
}

LocalizationResult
Localizer::deadReckonFrame(const FrameInput &input)
{
    LocalizationResult res;
    res.frame_index = input.frame_index;
    res.mode = cfg_.mode;

    // Keep the VIO filter's clock aligned with the session clock so it
    // propagates across the gap rather than re-anchoring when imagery
    // returns.
    if (cfg_.mode == BackendMode::Vio)
        msckf_->propagate(input.imu);

    HealthSignals sig;
    sig.have_images = false;
    sig.imu_samples = static_cast<int>(input.imu.size());
    sig.gps_valid = input.gps.valid;
    applyHealth(input, nullptr, sig, Vec3::zero(), res);
    updatePoseHistory(res);

    last_frame_t_ = input.t;
    return res;
}

void
Localizer::applyHealth(const FrameInput &input, const FrontendOutput *fe,
                       HealthSignals sig, const Vec3 &vio_velocity,
                       LocalizationResult &res)
{
    if (fe) {
        sig.features = fe->workload.left_features;
        sig.stereo_matches = fe->workload.stereo_matches;
    }
    sig.imu_samples = static_cast<int>(input.imu.size());
    sig.gps_valid = input.gps.valid;

    health_.update(sig);
    res.telemetry.health = health_.state();

    if (health_.lastFrameGood() && res.ok) {
        // Vision confirmed this pose: re-seed the reckoner so the
        // dead-reckoning horizon is always "since the last good frame".
        Vec3 vel = Vec3::zero();
        if (cfg_.mode == BackendMode::Vio) {
            vel = vio_velocity; // solve-stage snapshot, not msckf_
        } else if (last_pose_) {
            const double dt = input.t - last_frame_t_;
            if (dt > 1e-6)
                vel = (res.pose.translation - last_pose_->translation) *
                      (1.0 / dt);
        }
        reckoner_.seed(res.pose, input.t, vel);
        return;
    }

    // Vision-bad frame: advance the internal-sensor track regardless,
    // so it is current the moment the state machine commits to it.
    reckoner_.propagate(input.imu, input.odometry, input.t);

    if (cfg_.health.enable_fallback &&
        health_.state() == TrackingHealth::DeadReckoning &&
        reckoner_.seeded()) {
        res.pose = reckoner_.pose();
        res.ok = true;
        res.telemetry.dead_reckoned = true;
    }
}

void
Localizer::processVioSolve(const FrameInput &input, const FrontendOutput &fe,
                           BackendStageContext &ctx)
{
    LocalizationResult &res = ctx.res;

    msckf_->propagate(input.imu);

    long clone_id = next_clone_id_++;
    std::vector<FeatureTrack> finished =
        track_manager_.ingest(fe, clone_id);
    long oldest = msckf_->update(finished, clone_id);
    track_manager_.dropObservationsBefore(oldest);

    res.telemetry.msckf = msckf_->lastTiming();
    res.telemetry.msckf_workload = msckf_->lastWorkload();
    res.pose = msckf_->pose();
    res.ok = true;

    // Snapshot the filter state the finish sub-stage needs: by the
    // time finish runs, the next frame's solve may already be
    // propagating the filter on another worker.
    ctx.vio_velocity = msckf_->velocity();
    const MatX &cov = msckf_->covariance();
    if (cov.rows() >= 15)
        ctx.vio_pos_cov_trace =
            cov(12, 12) + cov(13, 13) + cov(14, 14);
}

void
Localizer::processVioFinish(const FrameInput &input, const FrontendOutput &fe,
                            BackendStageContext &ctx)
{
    LocalizationResult &res = ctx.res;
    if (fusion_) {
        StageTimer timer(res.telemetry.fusion_ms);
        double dt = input.t - last_frame_t_;
        fusion_->fuse(res.pose.translation, input.gps, dt);
        res.pose = fusion_->correct(res.pose);
    }
    // Health + fallback run where VIO owns its pose history (the fused
    // pose is the final one); nothing in the VIO solve sub-stage reads
    // either.
    HealthSignals sig;
    sig.solve_ok = res.ok;
    sig.position_cov_trace = ctx.vio_pos_cov_trace;
    applyHealth(input, &fe, sig, ctx.vio_velocity, res);
    updatePoseHistory(res);
}

void
Localizer::processSlamSolve(const FrameInput &input, const FrontendOutput &fe,
                            BackendStageContext &ctx)
{
    LocalizationResult &res = ctx.res;

    // Constant-velocity prediction for the tracking block.
    std::optional<Pose> prediction;
    if (last_pose_ && prev_pose_) {
        Pose delta = prev_pose_->inverse() * *last_pose_;
        prediction = *last_pose_ * delta;
    } else if (last_pose_) {
        prediction = last_pose_;
    }

    Pose estimate = prediction.value_or(Pose::identity());
    bool have_estimate = prediction.has_value();

    HealthSignals sig;
    bool tracked_this_frame = false;

    // Tracking against the latest map (runs on every frame). On the
    // very first frames the map is empty and tracking reports lost; the
    // mapper bootstraps from the initial pose. Tracking only *reads*
    // the map, so it may overlap the previous frame's finish sub-stage
    // (marginalization + loop detection), which is read-only too.
    if (mapper_->map().pointCount() > 0) {
        TrackingResult tr = slam_tracker_->track(fe, prediction);
        res.telemetry.tracking = tr.timing;
        res.telemetry.tracking_workload = tr.workload;
        tracked_this_frame = true;
        sig.solve_ok = tr.ok;
        sig.inliers = tr.inliers;
        res.telemetry.tracking_inliers = tr.inliers;
        res.telemetry.relocalized = tr.relocalized;
        if (tr.ok) {
            estimate = tr.pose;
            have_estimate = true;
        } else if (!prediction) {
            // Lost with no prediction and no relocalization: hold pose.
            estimate = last_pose_.value_or(Pose::identity());
        }
    }

    // Synchronization point with the previous frame's finish sub-stage:
    // from here on the solve mutates the map (keyframe insertion, BA),
    // so the pending marginalization/loop outputs must be in.
    waitFinishedBefore(ctx.seq);
    if (auto corr =
            mapper_->applyPendingFinish(res.telemetry.mapping)) {
        // A loop closed on the previous keyframe: the whole window
        // (and therefore the running estimate and the prediction
        // history) moves by the rigid correction.
        estimate = *corr * estimate;
        if (last_pose_)
            last_pose_ = *corr * *last_pose_;
        if (prev_pose_)
            prev_pose_ = *corr * *prev_pose_;
    }
    if (map_service_)
        contributeRetiredKeyframes();

    MappingResult mr = mapper_->processFrameSolve(fe, estimate);
    res.telemetry.mapping.solver_ms += mr.timing.solver_ms;
    res.telemetry.mapping.others_ms += mr.timing.others_ms;
    res.telemetry.mapping_workload = mr.workload;

    res.pose = mr.keyframe_added ? mr.pose : estimate;
    res.ok = have_estimate || mr.keyframe_added;
    if (!tracked_this_frame) {
        // Map still bootstrapping: the mapper anchors the pose, so the
        // frame counts as solved even though tracking never ran.
        sig.solve_ok = res.ok;
    }
    applyHealth(input, &fe, sig, Vec3::zero(), res);
    updatePoseHistory(res);
}

void
Localizer::processSlamFinish(BackendStageContext &ctx)
{
    LocalizationResult &res = ctx.res;
    MappingResult fin;
    fin.timing = {};
    fin.workload = res.telemetry.mapping_workload;
    mapper_->computeFinish(fin);
    res.telemetry.mapping.marginalization_ms +=
        fin.timing.marginalization_ms;
    res.telemetry.mapping.loop_ms += fin.timing.loop_ms;
    res.telemetry.mapping_workload = fin.workload;
}

void
Localizer::processRegistrationSolve(const FrameInput &input,
                                    const FrontendOutput &fe,
                                    BackendStageContext &ctx)
{
    LocalizationResult &res = ctx.res;

    std::optional<Pose> prediction;
    if (last_pose_ && prev_pose_) {
        Pose delta = prev_pose_->inverse() * *last_pose_;
        prediction = *last_pose_ * delta;
    } else if (last_pose_) {
        prediction = last_pose_;
    }

    TrackingResult tr = reg_tracker_->track(fe, prediction);
    if (!tr.ok && prediction) {
        // Prediction-based tracking failed: fall back to BoW
        // relocalization within the same frame.
        TrackingResult reloc = reg_tracker_->track(fe, std::nullopt);
        reloc.timing.update_ms += tr.timing.update_ms;
        reloc.timing.projection_ms += tr.timing.projection_ms;
        reloc.timing.match_ms += tr.timing.match_ms;
        reloc.timing.pose_opt_ms += tr.timing.pose_opt_ms;
        tr = reloc;
    } else if (tr.ok && health_.inlierCollapse(tr.inliers)) {
        // Tracking "succeeded" but its inlier count collapsed against
        // the session's own baseline — the kidnapped-robot signature:
        // a mis-localized prediction scrapes together a few aliased
        // inliers and would otherwise drift for dozens of frames
        // before failing outright. Force a BoW relocalization attempt
        // and take it when it is decisively better.
        TrackingResult reloc = reg_tracker_->track(fe, std::nullopt);
        if (reloc.ok && reloc.inliers > 2 * tr.inliers) {
            reloc.timing.update_ms += tr.timing.update_ms;
            reloc.timing.projection_ms += tr.timing.projection_ms;
            reloc.timing.match_ms += tr.timing.match_ms;
            reloc.timing.pose_opt_ms += tr.timing.pose_opt_ms;
            tr = reloc;
        }
    }
    res.telemetry.tracking = tr.timing;
    res.telemetry.tracking_workload = tr.workload;
    if (tr.ok) {
        res.pose = tr.pose;
        res.ok = true;
    } else {
        res.pose = last_pose_.value_or(Pose::identity());
        res.ok = false;
    }
    res.telemetry.tracking_inliers = tr.inliers;
    res.telemetry.relocalized = tr.relocalized;
    HealthSignals sig;
    sig.solve_ok = tr.ok;
    sig.inliers = tr.inliers;
    applyHealth(input, &fe, sig, Vec3::zero(), res);
    updatePoseHistory(res);
}

} // namespace edx
