#include "core/localizer.hpp"

#include "runtime/solve_hub.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

LocalizerConfig
configForScenario(SceneType scene)
{
    LocalizerConfig cfg;
    cfg.mode = preferredMode(scene);
    cfg.use_gps = scenarioTraits(scene).gps_available;
    return cfg;
}

Localizer::Localizer(const LocalizerConfig &cfg, const StereoRig &rig,
                     const Vocabulary *vocabulary, const Map *prior_map)
    : cfg_(cfg), rig_(rig), voc_(vocabulary), frontend_(cfg.frontend)
{
    switch (cfg_.mode) {
      case BackendMode::Vio:
        msckf_ = std::make_unique<Msckf>(rig_, cfg_.msckf);
        if (cfg_.use_gps)
            fusion_ = std::make_unique<GpsFusion>(cfg_.fusion);
        break;
      case BackendMode::Slam:
        mapper_ = std::make_unique<Mapper>(rig_, voc_, cfg_.mapping);
        slam_tracker_ = std::make_unique<Tracker>(
            &mapper_->map(), voc_, rig_.cam, rig_.body_from_camera,
            cfg_.tracking);
        break;
      case BackendMode::Registration:
        assert(prior_map && "registration mode requires a map");
        registration_map_ = prior_map;
        reg_tracker_ = std::make_unique<Tracker>(
            registration_map_, voc_, rig_.cam, rig_.body_from_camera,
            cfg_.tracking);
        // The shared prior map is immutable: the projection kernel's
        // homogeneous point matrix can persist across frames.
        reg_tracker_->setStaticMap(true);
        break;
    }
}

Localizer::~Localizer() = default;

void
Localizer::setSolveHub(SolveHub *hub)
{
    hub_ = hub;
    if (msckf_)
        msckf_->setSolveHub(hub);
    if (reg_tracker_)
        reg_tracker_->setSolveHub(hub);
    if (slam_tracker_)
        slam_tracker_->setSolveHub(hub);
    if (mapper_)
        mapper_->setSolveHub(hub);
}

void
Localizer::initialize(const Pose &start_pose, double t,
                      const Vec3 &start_velocity)
{
    if (cfg_.mode == BackendMode::Vio)
        msckf_->initialize(start_pose, t, start_velocity);
    last_pose_ = start_pose;
    prev_pose_.reset();
    last_frame_t_ = t;
    initialized_ = true;
}

const Map *
Localizer::currentMap() const
{
    if (cfg_.mode == BackendMode::Slam)
        return &mapper_->map();
    if (cfg_.mode == BackendMode::Registration)
        return registration_map_;
    return nullptr;
}

LocalizationResult
Localizer::rejectFrame(int frame_index) const
{
    LocalizationResult res;
    res.frame_index = frame_index;
    res.mode = cfg_.mode;
    res.ok = false;
    return res;
}

FrontendOutput
Localizer::runFrontend(const ImageU8 &left, const ImageU8 &right)
{
    return frontend_.processFrame(left, right);
}

LocalizationResult
Localizer::runBackend(const FrameInput &input, const FrontendOutput &fe)
{
    if (!initialized_)
        return rejectFrame(input.frame_index);

    // Register this backend stage with the batching rendezvous (no-op
    // without a hub): its kernel requests may now group with the other
    // sessions currently inside their backend stages.
    SolveHub::StageGuard stage_guard(hub_);

    LocalizationResult res;
    switch (cfg_.mode) {
      case BackendMode::Vio:
        res = processVio(input, fe);
        break;
      case BackendMode::Slam:
        res = processSlam(input, fe);
        break;
      case BackendMode::Registration:
        res = processRegistration(input, fe);
        break;
    }
    res.frame_index = input.frame_index;
    res.mode = cfg_.mode;
    res.telemetry.frontend = fe.timing;
    res.telemetry.frontend_workload = fe.workload;

    if (res.ok) {
        prev_pose_ = last_pose_;
        last_pose_ = res.pose;
    }
    last_frame_t_ = input.t;
    return res;
}

LocalizationResult
Localizer::processFrame(const FrameInput &input)
{
    // Frames before initialize() (or without images) cannot be
    // localized; report failure rather than asserting so release builds
    // degrade gracefully.
    if (!initialized_ || !input.hasImages())
        return rejectFrame(input.frame_index);

    FrontendOutput fe = runFrontend(input.left, input.right);
    return runBackend(input, fe);
}

LocalizationResult
Localizer::processVio(const FrameInput &input, const FrontendOutput &fe)
{
    LocalizationResult res;

    msckf_->propagate(input.imu);

    long clone_id = next_clone_id_++;
    std::vector<FeatureTrack> finished =
        track_manager_.ingest(fe, clone_id);
    long oldest = msckf_->update(finished, clone_id);
    track_manager_.dropObservationsBefore(oldest);

    res.telemetry.msckf = msckf_->lastTiming();
    res.telemetry.msckf_workload = msckf_->lastWorkload();

    Pose pose = msckf_->pose();
    if (fusion_) {
        StageTimer timer(res.telemetry.fusion_ms);
        double dt = input.t - last_frame_t_;
        fusion_->fuse(pose.translation, input.gps, dt);
        pose = fusion_->correct(pose);
    }
    res.pose = pose;
    res.ok = true;
    return res;
}

LocalizationResult
Localizer::processSlam(const FrameInput &input, const FrontendOutput &fe)
{
    (void)input;
    LocalizationResult res;

    // Constant-velocity prediction for the tracking block.
    std::optional<Pose> prediction;
    if (last_pose_ && prev_pose_) {
        Pose delta = prev_pose_->inverse() * *last_pose_;
        prediction = *last_pose_ * delta;
    } else if (last_pose_) {
        prediction = last_pose_;
    }

    Pose estimate = prediction.value_or(Pose::identity());
    bool have_estimate = prediction.has_value();

    // Tracking against the latest map (runs on every frame). On the
    // very first frames the map is empty and tracking reports lost; the
    // mapper bootstraps from the initial pose.
    if (mapper_->map().pointCount() > 0) {
        TrackingResult tr = slam_tracker_->track(fe, prediction);
        res.telemetry.tracking = tr.timing;
        res.telemetry.tracking_workload = tr.workload;
        if (tr.ok) {
            estimate = tr.pose;
            have_estimate = true;
        } else if (!prediction) {
            // Lost with no prediction and no relocalization: hold pose.
            estimate = last_pose_.value_or(Pose::identity());
        }
    }

    MappingResult mr = mapper_->processFrame(fe, estimate);
    res.telemetry.mapping = mr.timing;
    res.telemetry.mapping_workload = mr.workload;

    res.pose = mr.keyframe_added ? mr.pose : estimate;
    res.ok = have_estimate || mr.keyframe_added;
    return res;
}

LocalizationResult
Localizer::processRegistration(const FrameInput &input,
                               const FrontendOutput &fe)
{
    (void)input;
    LocalizationResult res;

    std::optional<Pose> prediction;
    if (last_pose_ && prev_pose_) {
        Pose delta = prev_pose_->inverse() * *last_pose_;
        prediction = *last_pose_ * delta;
    } else if (last_pose_) {
        prediction = last_pose_;
    }

    TrackingResult tr = reg_tracker_->track(fe, prediction);
    if (!tr.ok && prediction) {
        // Prediction-based tracking failed: fall back to BoW
        // relocalization within the same frame.
        TrackingResult reloc = reg_tracker_->track(fe, std::nullopt);
        reloc.timing.update_ms += tr.timing.update_ms;
        reloc.timing.projection_ms += tr.timing.projection_ms;
        reloc.timing.match_ms += tr.timing.match_ms;
        reloc.timing.pose_opt_ms += tr.timing.pose_opt_ms;
        tr = reloc;
    }
    res.telemetry.tracking = tr.timing;
    res.telemetry.tracking_workload = tr.workload;
    if (tr.ok) {
        res.pose = tr.pose;
        res.ok = true;
    } else {
        res.pose = last_pose_.value_or(Pose::identity());
        res.ok = false;
    }
    return res;
}

} // namespace edx
