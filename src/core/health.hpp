/**
 * @file
 * Tracking-quality health monitor: the state machine behind the
 * degraded-sensing fallback (ROADMAP "scenario diversity" item).
 *
 * A commercial deployment cannot assume the vision stream stays
 * usable: motion blur, low light, occlusion and outright frame drops
 * all collapse the frontend's feature yield, and a localizer that
 * keeps reporting confident poses through such a collapse is worse
 * than one that fails loudly. The monitor turns the signals the frame
 * path already produces — tracked-feature count, solver success,
 * inlier count, covariance growth, IMU/GPS staleness — into an
 * explicit per-session quality state:
 *
 *   NOMINAL --bad frame--> DEGRADED --sustained--> DEAD_RECKONING
 *      ^                      |                        |
 *      |                      +----good frame----+     | good frame
 *      |                                         v     v
 *      +------sustained good frames--------- RECOVERING
 *
 * DEGRADED is a debounce band: a single blurry frame must not flip a
 * session into fallback. DEAD_RECKONING means vision is unusable and
 * the localizer is propagating from internal sensors only
 * (sensors/dead_reckoning.hpp); the pose stream stays continuous but
 * is explicitly flagged — downstream consumers (planner, pool QoS)
 * see the flag in FrameTelemetry/PoolStats, so a dead-reckoned pose
 * is never mistaken for a vision-confirmed one. RECOVERING debounces
 * the way back: vision must hold for a streak of frames before the
 * session is NOMINAL again.
 *
 * The monitor is pure bookkeeping (no clock, no allocation) so it can
 * sit on the frame hot path of whichever backend sub-stage owns the
 * session's pose history.
 */
#pragma once

namespace edx {

/** Tracking-quality state of one localization session. */
enum class TrackingHealth
{
    Nominal = 0,       //!< vision healthy, pose vision-confirmed
    Degraded = 1,      //!< vision marginal; debouncing toward fallback
    DeadReckoning = 2, //!< vision collapsed; internal-sensor propagation
    Recovering = 3,    //!< vision back; debouncing toward nominal
};

constexpr int kTrackingHealthStates = 4;

/** Display name of a health state ("nominal", ...). */
const char *healthName(TrackingHealth h);

/** Health state machine thresholds. */
struct HealthConfig
{
    /**
     * Master switch of the dead-reckoning fallback: off (the default)
     * preserves the legacy behaviour exactly — the monitor still
     * classifies frames, but the localizer never substitutes the
     * dead-reckoned pose, so existing pose streams stay bit-identical.
     */
    bool enable_fallback = false;

    /** A frame with fewer detected features than this is "bad". */
    int min_features = 24;

    /** A frame with fewer stereo matches than this is "bad". */
    int min_stereo_matches = 10;

    /**
     * A solved frame whose inlier count (tracking modes) falls below
     * this is "bad" even when the solver reported success.
     */
    int min_inliers = 8;

    /**
     * Relative inlier-collapse detector: a solved frame whose inlier
     * count falls below this fraction of the session's running (EMA)
     * inlier baseline is "bad" even when it clears min_inliers. This
     * is what catches kidnapped-robot aliasing — a mis-localized
     * tracker still scrapes together a handful of geometrically false
     * inliers, far above any sane absolute floor but two orders of
     * magnitude under its own nominal level. <= 0 disables.
     */
    double inlier_collapse_frac = 0.15;

    /** EMA weight of a new good frame in the inlier baseline. */
    double inlier_baseline_alpha = 0.1;

    /**
     * VIO: position-block covariance trace above this means the filter
     * has been starved of updates long enough to be untrustworthy, m^2.
     */
    double max_position_cov_trace = 4.0;

    /** Consecutive bad frames in DEGRADED before DEAD_RECKONING. */
    int degrade_frames = 2;

    /** Consecutive good frames in RECOVERING before NOMINAL. */
    int recover_frames = 3;
};

/** Per-frame quality signals fed to the monitor. */
struct HealthSignals
{
    bool have_images = true;  //!< frame carried a stereo pair at all
    int features = 0;         //!< frontend left-image feature count
    int stereo_matches = 0;   //!< frontend stereo correspondences
    bool solve_ok = false;    //!< mode backend produced a vision pose
    int inliers = -1;         //!< tracking inliers (-1: not applicable)
    double position_cov_trace = -1.0; //!< VIO pos. cov trace (-1: n/a)
    int imu_samples = 0;      //!< IMU samples delivered with the frame
    bool gps_valid = false;   //!< frame carried a valid GPS fix
};

/** The per-session tracking-quality state machine. */
class HealthMonitor
{
  public:
    explicit HealthMonitor(const HealthConfig &cfg = {}) : cfg_(cfg) {}

    /** Classifies one frame and advances the state machine. */
    TrackingHealth update(const HealthSignals &sig);

    TrackingHealth state() const { return state_; }

    /** Whether the last update()'s frame classified as vision-good. */
    bool lastFrameGood() const { return last_good_; }

    /** Running inlier baseline of good frames (-1: not established). */
    double inlierBaseline() const { return inlier_ema_; }

    /**
     * True when @p inliers is a collapse relative to the session's
     * baseline (see HealthConfig::inlier_collapse_frac). The backend
     * may consult this mid-frame — before update() — to escalate, e.g.
     * force a relocalization attempt instead of trusting a marginal
     * prediction-tracked pose.
     */
    bool
    inlierCollapse(int inliers) const
    {
        return cfg_.inlier_collapse_frac > 0.0 && inlier_ema_ > 0.0 &&
               inliers >= 0 &&
               inliers < cfg_.inlier_collapse_frac * inlier_ema_;
    }

    /** Frames spent in each state (indexed by TrackingHealth). */
    long framesIn(TrackingHealth h) const
    {
        return frames_in_[static_cast<int>(h)];
    }

    /** Total state-machine transitions so far. */
    long transitions() const { return transitions_; }

    /** Resets to NOMINAL (session re-initialization). */
    void reset();

    const HealthConfig &config() const { return cfg_; }

  private:
    bool frameGood(const HealthSignals &sig) const;
    void moveTo(TrackingHealth next);

    HealthConfig cfg_;
    TrackingHealth state_ = TrackingHealth::Nominal;
    int bad_streak_ = 0;
    int good_streak_ = 0;
    bool last_good_ = true;
    double inlier_ema_ = -1.0;
    long transitions_ = 0;
    long frames_in_[kTrackingHealthStates] = {0, 0, 0, 0};
};

} // namespace edx
