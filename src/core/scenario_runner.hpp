/**
 * @file
 * Adversarial-scenario execution: runs one localization session over a
 * DegradedDataset cell (scenario x backend mode) and summarizes the
 * accuracy and health outcome.
 *
 * This is the shared engine under the scenario-matrix CI harness
 * (bench_scenario_matrix) and the degradation/recovery unit tests: one
 * implementation of "play a ScenarioSpec through the localizer",
 * exercised by both, so a matrix regression reproduces in a unit test
 * with the same code path.
 */
#pragma once

#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "sim/degradation.hpp"

namespace edx {

/** One frame of a scenario run (pose stream + health stream). */
struct ScenarioFrameRecord
{
    int frame_index = 0;
    bool ok = false;
    Pose pose;  //!< localizer output (held on failed frames)
    Pose truth; //!< ground truth (follows teleports)
    TrackingHealth health = TrackingHealth::Nominal;
    bool dead_reckoned = false;
    int inliers = -1;         //!< tracking modes only
    bool relocalized = false; //!< frame used the BoW database
};

/** Execution options of one matrix cell. */
struct ScenarioRunOptions
{
    /** Enable the dead-reckoning fallback (HealthConfig). */
    bool enable_fallback = true;

    /** Extra tuning hook over the derived LocalizerConfig. */
    void (*tune)(LocalizerConfig &) = nullptr;
};

/** Outcome of one scenario x mode cell. */
struct ScenarioCellResult
{
    std::string scenario;
    SceneType scene = SceneType::IndoorUnknown;
    BackendMode mode = BackendMode::Slam;

    /** Whole-run accuracy (held poses on failed frames). */
    TrajectoryError error;

    /**
     * Accuracy over the post-degradation tail: frames after the last
     * event window closes. Bounded tail error is the re-convergence
     * criterion — a session that never recovers drags this up even
     * when the whole-run ATE is diluted by the clean lead-in.
     */
    TrajectoryError tail_error;
    int tail_start = 0; //!< first frame of the tail window

    long health_frames[kTrackingHealthStates] = {0, 0, 0, 0};
    long dead_reckoned_frames = 0;
    long failed_frames = 0; //!< frames with neither vision nor fallback

    std::vector<ScenarioFrameRecord> frames;
};

/**
 * Runs one scenario cell: builds the degraded dataset and the offline
 * assets (vocabulary / prior map, from the *clean* base so the map
 * also covers a teleport's target segment), then plays every frame
 * through Localizer::processFrame().
 */
ScenarioCellResult runScenarioCell(const ScenarioSpec &spec,
                                   BackendMode mode,
                                   const ScenarioRunOptions &opt = {});

/** FrameInput for logical frame @p i of a degraded dataset. */
FrameInput degradedFrameInput(const DegradedDataset &dd, int i);

} // namespace edx
