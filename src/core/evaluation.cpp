#include "core/evaluation.hpp"

#include <cassert>
#include <cmath>

#include "frontend/frontend.hpp"
#include "math/rng.hpp"

namespace edx {

TrajectoryError
computeTrajectoryError(const std::vector<Pose> &estimate,
                       const std::vector<Pose> &truth, int rpe_delta)
{
    assert(estimate.size() == truth.size());
    TrajectoryError err;
    err.frames = static_cast<int>(estimate.size());
    if (estimate.empty())
        return err;

    double sum_sq = 0.0, sum_rot = 0.0, path = 0.0;
    for (size_t i = 0; i < estimate.size(); ++i) {
        Pose::Delta d = estimate[i].distanceTo(truth[i]);
        sum_sq += d.translational * d.translational;
        sum_rot += d.rotational;
        err.max_m = std::max(err.max_m, d.translational);
        if (i > 0)
            path += (truth[i].translation - truth[i - 1].translation)
                        .norm();
    }
    err.rmse_m = std::sqrt(sum_sq / estimate.size());
    err.mean_rot_deg = sum_rot / estimate.size() * 180.0 / M_PI;
    err.relative_percent = path > 0.0 ? 100.0 * err.rmse_m / path : 0.0;

    // Relative pose error: estimated vs. true motion increment over
    // delta-spaced frame pairs.
    const int n = err.frames;
    int delta = rpe_delta > 0 ? rpe_delta : 1;
    if (delta >= n)
        delta = n - 1;
    if (delta > 0) {
        double rpe_sq = 0.0, rpe_rot = 0.0;
        int pairs = 0;
        for (int i = 0; i + delta < n; ++i) {
            Pose est_inc = estimate[i].inverse() * estimate[i + delta];
            Pose tru_inc = truth[i].inverse() * truth[i + delta];
            Pose::Delta d = est_inc.distanceTo(tru_inc);
            rpe_sq += d.translational * d.translational;
            rpe_rot += d.rotational;
            ++pairs;
        }
        if (pairs > 0) {
            err.rpe_m = std::sqrt(rpe_sq / pairs);
            err.rpe_deg = rpe_rot / pairs * 180.0 / M_PI;
            err.rpe_delta = delta;
        }
    }
    return err;
}

Vocabulary
buildVocabulary(const Dataset &dataset, int frame_stride,
                const VocabularyConfig &cfg)
{
    VisionFrontend frontend;
    std::vector<Descriptor> corpus;
    for (int i = 0; i < dataset.frameCount(); i += frame_stride) {
        DatasetFrame f = dataset.frame(i);
        FrontendOutput out =
            frontend.processFrame(f.stereo.left, f.stereo.right);
        for (const Descriptor &d : out.descriptors)
            corpus.push_back(d);
    }
    return Vocabulary::train(corpus, cfg);
}

Map
buildPriorMap(const Dataset &dataset, const Vocabulary &vocabulary,
              const MapBuildConfig &cfg)
{
    Map map;
    VisionFrontend frontend;
    Rng rng(cfg.seed);
    const StereoRig &rig = dataset.rig();

    for (int i = 0; i < dataset.frameCount(); i += cfg.frame_stride) {
        DatasetFrame f = dataset.frame(i);
        FrontendOutput out =
            frontend.processFrame(f.stereo.left, f.stereo.right);

        // Mapping-run pose: reference pose with drift-like noise.
        Pose kf_pose = f.truth;
        kf_pose.translation += Vec3{rng.gaussian(0, cfg.pose_noise_m),
                                    rng.gaussian(0, cfg.pose_noise_m),
                                    rng.gaussian(0, cfg.pose_noise_m)};

        Keyframe kf;
        kf.pose = kf_pose;
        kf.keypoints = out.keypoints;
        kf.descriptors = out.descriptors;
        kf.map_point_ids.assign(out.keypoints.size(), -1);
        if (vocabulary.trained())
            kf.bow = vocabulary.transform(out.descriptors);

        Pose world_from_camera = kf_pose * rig.body_from_camera;
        int added = 0;
        for (const StereoMatch &s : out.stereo) {
            if (added >= cfg.max_points_per_frame)
                break;
            int k = s.left_index;
            auto p_cam = rig.triangulate(
                Vec2{out.keypoints[k].x, out.keypoints[k].y},
                s.disparity);
            if (!p_cam || (*p_cam)[2] > cfg.max_point_depth_m)
                continue;
            MapPoint mp;
            mp.position = world_from_camera.apply(*p_cam) +
                          Vec3{rng.gaussian(0, cfg.point_noise_m),
                               rng.gaussian(0, cfg.point_noise_m),
                               rng.gaussian(0, cfg.point_noise_m)};
            mp.descriptor = out.descriptors[k];
            mp.observations = 1;
            kf.map_point_ids[k] = map.addPoint(mp);
            ++added;
        }
        map.addKeyframe(std::move(kf));
    }
    return map;
}

} // namespace edx
