/**
 * @file
 * Evaluation utilities: trajectory error metrics and the offline
 * construction of vocabularies and prior maps from datasets.
 *
 * The prior-map builder stands in for the paper's "environment mapped a
 * few days earlier" workflow (Sec. III): a mapping run covers the world,
 * triangulates landmarks and records keyframes. Map imperfection is
 * controlled by a noise parameter - small for indoor maps, larger for
 * outdoor maps where mapping-run drift and lighting change degrade map
 * quality (this is what makes registration lose to VIO outdoors in
 * Fig. 3d).
 */
#pragma once

#include <vector>

#include "backend/map.hpp"
#include "backend/vocabulary.hpp"
#include "math/se3.hpp"
#include "sim/dataset.hpp"

namespace edx {

/** Trajectory accuracy summary (Fig. 3 metrics). */
struct TrajectoryError
{
    double rmse_m = 0.0;          //!< ATE: RMSE of translational error
    double max_m = 0.0;           //!< worst-frame translational error
    double mean_rot_deg = 0.0;    //!< mean rotational error
    double relative_percent = 0.0; //!< RMSE / path length * 100

    /**
     * Relative pose error over a fixed frame delta: the error of the
     * estimated motion increment against the true one, RMSE over all
     * delta-spaced pairs. Unlike the ATE above it is immune to the
     * global drift a dead-reckoning stretch accumulates, so the
     * scenario matrix gates both — ATE bounds total drift, RPE bounds
     * local consistency.
     */
    double rpe_m = 0.0;           //!< translational RPE, m per delta
    double rpe_deg = 0.0;         //!< rotational RPE, deg per delta
    int rpe_delta = 0;            //!< frame spacing used for the RPE

    int frames = 0;
};

/**
 * Compares an estimated trajectory against ground truth (same length,
 * same frame indices). @p rpe_delta is the frame spacing of the
 * relative-pose-error pairs (clamped to the trajectory length).
 */
TrajectoryError computeTrajectoryError(const std::vector<Pose> &estimate,
                                       const std::vector<Pose> &truth,
                                       int rpe_delta = 10);

/** Vocabulary/map builder settings. */
struct MapBuildConfig
{
    int frame_stride = 2;        //!< keyframe cadence of the mapping run
    double point_noise_m = 0.03; //!< landmark position error (map drift)
    double pose_noise_m = 0.02;  //!< keyframe position error
    uint64_t seed = 7;
    int max_points_per_frame = 400;
    double max_point_depth_m = 45.0; //!< reject far, disparity-noise points
};

/**
 * Trains a BoW vocabulary from descriptors sampled across the dataset.
 */
Vocabulary buildVocabulary(const Dataset &dataset, int frame_stride = 10,
                           const VocabularyConfig &cfg = {});

/**
 * Builds a prior map by a mapping pass over the dataset: renders
 * keyframes, extracts features, triangulates stereo landmarks with the
 * (noise-perturbed) reference poses, and stores BoW vectors for place
 * recognition.
 */
Map buildPriorMap(const Dataset &dataset, const Vocabulary &vocabulary,
                  const MapBuildConfig &cfg = {});

} // namespace edx
