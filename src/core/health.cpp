#include "core/health.hpp"

namespace edx {

const char *
healthName(TrackingHealth h)
{
    switch (h) {
      case TrackingHealth::Nominal:
        return "nominal";
      case TrackingHealth::Degraded:
        return "degraded";
      case TrackingHealth::DeadReckoning:
        return "dead-reckoning";
      case TrackingHealth::Recovering:
        return "recovering";
    }
    return "?";
}

bool
HealthMonitor::frameGood(const HealthSignals &sig) const
{
    if (!sig.have_images)
        return false;
    if (!sig.solve_ok)
        return false;
    if (sig.features < cfg_.min_features)
        return false;
    if (sig.stereo_matches < cfg_.min_stereo_matches)
        return false;
    if (sig.inliers >= 0 && sig.inliers < cfg_.min_inliers)
        return false;
    if (sig.solve_ok && inlierCollapse(sig.inliers))
        return false;
    if (sig.position_cov_trace >= 0.0 &&
        sig.position_cov_trace > cfg_.max_position_cov_trace)
        return false;
    return true;
}

void
HealthMonitor::moveTo(TrackingHealth next)
{
    if (next == state_)
        return;
    state_ = next;
    ++transitions_;
}

TrackingHealth
HealthMonitor::update(const HealthSignals &sig)
{
    last_good_ = frameGood(sig);
    if (last_good_) {
        ++good_streak_;
        bad_streak_ = 0;
        // The baseline follows good frames only, so a sustained
        // collapse cannot drag its own reference level down with it.
        if (sig.inliers >= 0)
            inlier_ema_ = inlier_ema_ < 0.0
                              ? sig.inliers
                              : (1.0 - cfg_.inlier_baseline_alpha) *
                                        inlier_ema_ +
                                    cfg_.inlier_baseline_alpha *
                                        sig.inliers;
    } else {
        ++bad_streak_;
        good_streak_ = 0;
    }

    switch (state_) {
      case TrackingHealth::Nominal:
        if (!last_good_)
            moveTo(bad_streak_ >= cfg_.degrade_frames
                       ? TrackingHealth::DeadReckoning
                       : TrackingHealth::Degraded);
        break;
      case TrackingHealth::Degraded:
        if (last_good_)
            moveTo(TrackingHealth::Nominal);
        else if (bad_streak_ >= cfg_.degrade_frames)
            moveTo(TrackingHealth::DeadReckoning);
        break;
      case TrackingHealth::DeadReckoning:
        if (last_good_)
            moveTo(good_streak_ >= cfg_.recover_frames
                       ? TrackingHealth::Nominal
                       : TrackingHealth::Recovering);
        break;
      case TrackingHealth::Recovering:
        if (!last_good_)
            moveTo(TrackingHealth::DeadReckoning);
        else if (good_streak_ >= cfg_.recover_frames)
            moveTo(TrackingHealth::Nominal);
        break;
    }

    ++frames_in_[static_cast<int>(state_)];
    return state_;
}

void
HealthMonitor::reset()
{
    state_ = TrackingHealth::Nominal;
    bad_streak_ = 0;
    good_streak_ = 0;
    last_good_ = true;
    inlier_ema_ = -1.0;
}

} // namespace edx
