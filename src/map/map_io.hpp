/**
 * @file
 * Versioned map persistence (the "Persist Map" path of Fig. 4, made
 * production-shaped).
 *
 * The legacy Map::save format was a bare magic number followed by a
 * fixed field layout: any format change broke every map on disk, and a
 * corrupt file surfaced as silent garbage. The map_io format is built
 * for evolution, after the maplab VIMap resource files:
 *
 *   header:   u32 magic "EDXM" | u16 major | u16 minor | u32 sections
 *   section:  u32 id | u64 byte size | payload
 *
 * Sections are written in canonical (ascending id) order; the loader
 * dispatches on the id and *skips* unknown sections by their declared
 * size, so a reader stays forward-tolerant across minor versions (a
 * newer writer may append sections; it bumps the major only when the
 * framing or an existing section's layout changes). Every read is
 * bounds-checked against the declared sizes: a truncated or corrupt
 * file fails with a diagnostic, never undefined behavior.
 *
 * Known sections (v1):
 *   1  landmarks   position, descriptor, observation count
 *   2  keyframes   pose, features, landmark associations, BoW vector
 *   3  tile index  tile edge length + tile count (index is rebuilt)
 *
 * saveMapToBuffer() makes byte-identity testable: the writer is
 * deterministic, so save -> load -> save must reproduce the buffer
 * bit for bit.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "backend/map.hpp"

namespace edx {

inline constexpr uint32_t kMapFormatMagic = 0x4d584445u; //!< "EDXM"
inline constexpr uint16_t kMapFormatMajor = 1;
inline constexpr uint16_t kMapFormatMinor = 0;

/** Section ids of the v1 format. */
enum class MapSection : uint32_t
{
    Points = 1,
    Keyframes = 2,
    TileIndex = 3,
};

/** Outcome of a load: the map, or a diagnostic of why not. */
struct MapLoadResult
{
    std::optional<Map> map;
    std::string error; //!< empty on success

    uint16_t version_major = 0; //!< as stamped in the file header
    uint16_t version_minor = 0;
    int skipped_sections = 0; //!< unknown (newer-writer) sections

    explicit operator bool() const { return map.has_value(); }
};

/** Serializes @p map into the versioned byte format. Deterministic:
 *  the same map always yields the same bytes. */
std::vector<uint8_t> saveMapToBuffer(const Map &map);

/** Writes saveMapToBuffer() to @p path. @return false on I/O failure. */
bool saveMap(const Map &map, const std::string &path);

/** Parses a buffer written by saveMapToBuffer(). Never throws on
 *  malformed input; the diagnostic lands in MapLoadResult::error. */
MapLoadResult loadMapFromBuffer(const uint8_t *data, size_t size);

/** Reads and parses @p path. */
MapLoadResult loadMap(const std::string &path);

} // namespace edx
