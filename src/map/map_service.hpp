/**
 * @file
 * The live shared-map service (the ROADMAP's "shared-map service"
 * item): many pool sessions *write into* one map.
 *
 * Sessions used to share only read-only assets. The MapService closes
 * the collaborative-mapping loop: SLAM sessions contribute retired
 * keyframes (and the landmarks they observe), a background worker
 * merges the contributions — including cross-session loop detection
 * that aligns one robot's trajectory onto another's — and publishes
 * the result as an immutable copy-on-write **map epoch**
 * (std::shared_ptr<const MapEpoch>). Registration sessions pin the
 * current epoch at a solve boundary and track against it; the next
 * epoch is adopted at the next boundary, the same deferred-application
 * discipline as Mapper::applyPendingFinish.
 *
 * Never-block contract: a frame-rate solve thread touches exactly two
 * tiny critical sections — contribute() appends to an inbox, and
 * currentEpoch() copies a shared_ptr — neither of which is ever held
 * across merge work. The merge, eviction, tiling, and epoch
 * construction all run on the worker against worker-owned state, and
 * publication is a pointer swap. The pool test asserts the resulting
 * epoch-acquire latency bound while a merge is in flight.
 *
 * Determinism contract: every merge pass rebuilds the merged map from
 * scratch in fixed (session id, then keyframe seq) order, so the
 * published map is a pure function of the contribution *set* — the
 * arrival interleaving and the worker's pass boundaries cannot change
 * the bytes. The service test asserts byte-identical serialized epochs
 * across shuffled arrival orders.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "backend/map.hpp"
#include "backend/vocabulary.hpp"
#include "sensors/camera.hpp"

namespace edx {

/**
 * One published snapshot of the shared map. Immutable after
 * publication; readers hold it alive by shared_ptr, so a merge can
 * never mutate or free a map a solve is tracking against. Each epoch's
 * Map carries a fresh uid(), giving it its own SolveHub projection-
 * cache identity.
 */
struct MapEpoch
{
    uint64_t epoch = 0; //!< publication sequence number (1-based)
    Map map;

    // Provenance counters of this snapshot.
    int sessions = 0;            //!< contributing sessions merged
    int cross_session_loops = 0; //!< inter-session alignments applied
    int points_evicted = 0;      //!< dropped by the budget this epoch
    int keyframes_evicted = 0;
};

/**
 * One session's keyframe batch. Keyframe ids and map_point_ids are
 * *session-local* (the contributor's own map ids); the service
 * re-keys them into the merged map. Keyframes must arrive in
 * ascending id order per session — the retirement order of the
 * mapper's sliding window guarantees it.
 */
struct MapContribution
{
    std::vector<Keyframe> keyframes;
    std::vector<std::pair<int, MapPoint>> points; //!< (local id, point)
};

/** Service policy. */
struct MapServiceConfig
{
    /** Merged-map memory budget, enforced per epoch (0 = unlimited). */
    MapBudget budget;

    /** Tile edge of the epoch's spatial index; <= 0 skips tiling. */
    double tile_size_m = 25.0;

    /** Cross-session loop gate: BoW score and 3D-2D match floors
     *  (mirrors MappingConfig's intra-session loop gates). */
    double merge_min_score = 0.05;
    int merge_min_matches = 15;

    /** New keyframes pending before the worker runs a merge pass
     *  (1 = merge on every contribution). */
    int publish_min_keyframes = 1;
};

/** Service counters (surfaced through PoolStats). */
struct MapServiceStats
{
    long contributions = 0;      //!< contribute() calls accepted
    long keyframes_ingested = 0; //!< keyframes across all contributions
    long points_ingested = 0;    //!< landmark records across them
    long merges = 0;             //!< merge passes completed
    uint64_t epochs_published = 0;
    int sessions = 0;                 //!< registered contributors
    long cross_session_loops = 0;     //!< of the latest epoch
    long evicted_points = 0;          //!< of the latest epoch
    long evicted_keyframes = 0;       //!< of the latest epoch
    double max_merge_ms = 0.0;   //!< slowest merge pass (background)
    double max_publish_ms = 0.0; //!< slowest epoch swap (reader-visible)
};

/** The shared-map service. */
class MapService
{
  public:
    /**
     * @param vocabulary BoW vocabulary for cross-session loop
     *        detection (borrowed; null disables alignment — sessions
     *        then merge in their own frames)
     * @param rig stereo rig of the fleet (loop-closure pose solve)
     */
    MapService(const Vocabulary *vocabulary, const StereoRig &rig,
               const MapServiceConfig &cfg = {});

    /** Stops the worker; readers keep their pinned epochs alive. */
    ~MapService();

    MapService(const MapService &) = delete;
    MapService &operator=(const MapService &) = delete;

    /**
     * Seeds the merged map with a prior (session id -1, merged before
     * every live contributor). Call before the first contribution;
     * typically the deployment's persisted map.
     */
    void seed(const Map &prior);

    /** Registers a contributor; the key orders its keyframes in the
     *  deterministic merge (registration order = merge order). */
    int registerSession();

    /**
     * Queues one contribution. O(size of the contribution): appends to
     * the worker inbox under a lock no merge work ever holds. Safe
     * from any thread.
     */
    void contribute(int session_key, MapContribution c);

    /**
     * The latest published epoch — never null (epoch 0 is an empty
     * map). A shared_ptr copy under a swap-only mutex: bounded cost
     * even while a merge is in flight, which is the never-block
     * contract frame-rate solves rely on.
     */
    std::shared_ptr<const MapEpoch> currentEpoch() const;

    /** Blocks until every queued contribution is merged + published. */
    void flush();

    MapServiceStats stats() const;

    const MapServiceConfig &config() const { return cfg_; }

  private:
    /** Per-session ordered contribution store (worker-owned). */
    struct SessionStore
    {
        std::map<int, MapPoint> points; //!< by session-local id
        std::vector<Keyframe> keyframes; //!< ascending session-local id
    };

    struct InboxItem
    {
        int session_key;
        MapContribution contribution;
    };

    void workerLoop();
    /** Rebuilds the merged map from the stores (deterministic). */
    void mergeAndPublish();

    const Vocabulary *voc_;
    StereoRig rig_;
    MapServiceConfig cfg_;

    // Inbox: the only state contribute() touches. Tiny critical
    // sections by construction.
    mutable std::mutex inbox_m_;
    std::condition_variable inbox_cv_;
    std::vector<InboxItem> inbox_;
    size_t inbox_keyframes_ = 0;    //!< keyframes pending in the inbox
    uint64_t enqueued_batches_ = 0; //!< contribute() calls ever queued
    uint64_t merged_batches_ = 0;   //!< ... consumed by a finished pass
    int flush_waiters_ = 0;
    bool stopping_ = false;
    std::atomic<int> next_session_key_{0};
    MapServiceStats stats_; //!< under inbox_m_

    // Worker-owned merge state (no lock needed: single worker).
    std::map<int, SessionStore> stores_; //!< by session key; -1 = seed

    // Published epoch: swap-only mutex, never held across merge work.
    mutable std::mutex epoch_m_;
    std::shared_ptr<const MapEpoch> epoch_;

    std::thread worker_;
};

} // namespace edx
