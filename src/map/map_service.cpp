#include "map/map_service.hpp"

#include <chrono>
#include <unordered_map>

#include "backend/pose_opt.hpp"
#include "features/matcher.hpp"

namespace edx {

namespace {

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

MapService::MapService(const Vocabulary *vocabulary, const StereoRig &rig,
                       const MapServiceConfig &cfg)
    : voc_(vocabulary), rig_(rig), cfg_(cfg)
{
    if (cfg_.publish_min_keyframes < 1)
        cfg_.publish_min_keyframes = 1;
    epoch_ = std::make_shared<MapEpoch>(); // epoch 0: empty map
    worker_ = std::thread(&MapService::workerLoop, this);
}

MapService::~MapService()
{
    {
        std::lock_guard<std::mutex> lk(inbox_m_);
        stopping_ = true;
    }
    inbox_cv_.notify_all();
    worker_.join();
}

int
MapService::registerSession()
{
    return next_session_key_.fetch_add(1, std::memory_order_relaxed);
}

void
MapService::seed(const Map &prior)
{
    MapContribution c;
    c.keyframes = prior.keyframes();
    c.points.reserve(prior.points().size());
    for (int i = 0; i < prior.pointCount(); ++i)
        c.points.emplace_back(i, prior.points()[i]);
    contribute(-1, std::move(c));
}

void
MapService::contribute(int session_key, MapContribution c)
{
    {
        std::lock_guard<std::mutex> lk(inbox_m_);
        if (stopping_)
            return;
        ++stats_.contributions;
        stats_.keyframes_ingested +=
            static_cast<long>(c.keyframes.size());
        stats_.points_ingested += static_cast<long>(c.points.size());
        inbox_keyframes_ += c.keyframes.size();
        inbox_.push_back({session_key, std::move(c)});
        ++enqueued_batches_;
    }
    inbox_cv_.notify_all();
}

std::shared_ptr<const MapEpoch>
MapService::currentEpoch() const
{
    std::lock_guard<std::mutex> lk(epoch_m_);
    return epoch_;
}

void
MapService::flush()
{
    std::unique_lock<std::mutex> lk(inbox_m_);
    ++flush_waiters_;
    inbox_cv_.notify_all();
    inbox_cv_.wait(lk,
                   [&] { return merged_batches_ == enqueued_batches_; });
    --flush_waiters_;
}

MapServiceStats
MapService::stats() const
{
    std::lock_guard<std::mutex> lk(inbox_m_);
    MapServiceStats s = stats_;
    s.sessions = next_session_key_.load(std::memory_order_relaxed);
    return s;
}

void
MapService::workerLoop()
{
    for (;;) {
        std::vector<InboxItem> batch;
        uint64_t taken = 0;
        {
            std::unique_lock<std::mutex> lk(inbox_m_);
            inbox_cv_.wait(lk, [&] {
                return stopping_ ||
                       (!inbox_.empty() &&
                        (inbox_keyframes_ >= static_cast<size_t>(
                                                 cfg_.publish_min_keyframes) ||
                         flush_waiters_ > 0));
            });
            if (stopping_ && inbox_.empty())
                return;
            batch.swap(inbox_);
            inbox_keyframes_ = 0;
            taken = batch.size();
        }

        // Fold the batch into the per-session ordered stores. Stores
        // are worker-owned; no lock is held from here through
        // publication, which is what keeps contribute()/currentEpoch()
        // latency bounded during a merge.
        for (InboxItem &item : batch) {
            SessionStore &store = stores_[item.session_key];
            for (auto &[lid, point] : item.contribution.points)
                store.points.emplace(lid, point); // first write wins
            for (Keyframe &kf : item.contribution.keyframes)
                store.keyframes.push_back(std::move(kf));
            // Bound the store under the same budget the epoch obeys:
            // keyframes beyond the cap could never survive eviction,
            // so holding them only grows the rebuild.
            if (cfg_.budget.max_keyframes > 0 &&
                static_cast<int>(store.keyframes.size()) >
                    cfg_.budget.max_keyframes)
                store.keyframes.erase(
                    store.keyframes.begin(),
                    store.keyframes.end() - cfg_.budget.max_keyframes);
        }

        const auto t0 = std::chrono::steady_clock::now();
        mergeAndPublish();
        const double merge_ms = msSince(t0);

        {
            std::lock_guard<std::mutex> lk(inbox_m_);
            merged_batches_ += taken;
            ++stats_.merges;
            if (merge_ms > stats_.max_merge_ms)
                stats_.max_merge_ms = merge_ms;
        }
        inbox_cv_.notify_all();
    }
}

void
MapService::mergeAndPublish()
{
    // Deterministic rebuild: sessions in ascending key order (seed -1
    // first), keyframes in session-local sequence order. The merged
    // map is a pure function of the stores, independent of arrival
    // interleaving and pass boundaries.
    Map m;
    int sessions_merged = 0;
    int loops = 0;

    for (auto &[sid, store] : stores_) {
        if (store.keyframes.empty())
            continue;
        ++sessions_merged;
        Pose align = Pose::identity(); //!< session -> shared frame
        std::unordered_map<int, int> lid2gid;
        const int first_kf = m.keyframeCount();
        const int first_pt = m.pointCount();

        for (const Keyframe &src : store.keyframes) {
            Keyframe kf = src;
            kf.pose = align * kf.pose;
            for (int &lm : kf.map_point_ids) {
                if (lm < 0)
                    continue;
                auto it = lid2gid.find(lm);
                if (it == lid2gid.end()) {
                    auto pit = store.points.find(lm);
                    if (pit == store.points.end()) {
                        lm = -1; // landmark never shipped: orphan ref
                        continue;
                    }
                    MapPoint p = pit->second;
                    p.position = align.apply(p.position);
                    p.observations = 0;
                    it = lid2gid.emplace(lm, m.addPoint(p)).first;
                }
                lm = it->second;
                ++m.points()[lm].observations;
            }
            const int gid = m.addKeyframe(std::move(kf));

            // Cross-session loop detection: query only the keyframes
            // of *earlier* sessions (ids below this session's first),
            // mirroring the mapper's intra-session loop gate. A hit
            // re-aligns everything this session merged so far and
            // pre-aligns the rest of its stream.
            if (!voc_ || !voc_->trained() || first_kf == 0)
                continue;
            const Keyframe &cur = m.keyframes()[gid];
            if (cur.bow.empty())
                continue;
            auto place = m.queryPlace(cur.bow, first_kf - 1);
            if (!place || place->score < cfg_.merge_min_score)
                continue;
            const Keyframe &old = m.keyframes()[place->keyframe_id];
            std::vector<Match> matches =
                matchDescriptors(old.descriptors, cur.descriptors);
            std::vector<PoseObservation> obs;
            for (const Match &match : matches) {
                int lm = old.map_point_ids[match.query_index];
                if (lm < 0)
                    continue;
                const KeyPoint &kp = cur.keypoints[match.train_index];
                obs.push_back(
                    {m.points()[lm].position, Vec2{kp.x, kp.y}});
            }
            if (static_cast<int>(obs.size()) < cfg_.merge_min_matches)
                continue;
            PoseOptResult opt = optimizePose(cur.pose, obs, rig_.cam,
                                             rig_.body_from_camera);
            if (!opt.converged ||
                opt.inliers < cfg_.merge_min_matches / 2)
                continue;
            const Pose corr = opt.pose * cur.pose.inverse();
            for (int k = first_kf; k <= gid; ++k)
                m.keyframes()[k].pose = corr * m.keyframes()[k].pose;
            for (int p = first_pt; p < m.pointCount(); ++p)
                m.points()[p].position =
                    corr.apply(m.points()[p].position);
            align = corr * align;
            ++loops;
        }
    }

    const MapEvictionResult ev = m.evictToBudget(cfg_.budget);
    if (cfg_.tile_size_m > 0.0)
        m.buildTileIndex(cfg_.tile_size_m);

    auto next = std::make_shared<MapEpoch>();
    next->map = std::move(m);
    next->sessions = sessions_merged;
    next->cross_session_loops = loops;
    next->points_evicted = ev.points_evicted;
    next->keyframes_evicted = ev.keyframes_evicted;

    // Publication is a pointer swap: the only reader-visible cost.
    const auto t0 = std::chrono::steady_clock::now();
    uint64_t published = 0;
    {
        std::lock_guard<std::mutex> lk(epoch_m_);
        next->epoch = epoch_->epoch + 1;
        published = next->epoch;
        epoch_ = std::move(next);
    }
    const double publish_ms = msSince(t0);

    std::lock_guard<std::mutex> lk(inbox_m_);
    stats_.epochs_published = published;
    stats_.cross_session_loops = loops;
    stats_.evicted_points = ev.points_evicted;
    stats_.evicted_keyframes = ev.keyframes_evicted;
    if (publish_ms > stats_.max_publish_ms)
        stats_.max_publish_ms = publish_ms;
}

} // namespace edx
