#include "map/map_io.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <type_traits>

namespace edx {

namespace {

/** Appending little-endian-native byte writer (deterministic). */
class Writer
{
  public:
    template <typename T>
    void
    pod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const size_t off = buf_.size();
        buf_.resize(off + sizeof(T));
        std::memcpy(buf_.data() + off, &v, sizeof(T));
    }

    void
    pose(const Pose &p)
    {
        const double vals[7] = {p.rotation.w(),   p.rotation.x(),
                                p.rotation.y(),   p.rotation.z(),
                                p.translation[0], p.translation[1],
                                p.translation[2]};
        for (double v : vals)
            pod(v);
    }

    void
    bytes(const std::vector<uint8_t> &b)
    {
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked reader over a fixed byte range. */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    template <typename T>
    bool
    pod(T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (size_ - off_ < sizeof(T))
            return false;
        std::memcpy(&v, data_ + off_, sizeof(T));
        off_ += sizeof(T);
        return true;
    }

    /**
     * Reads a pose bit-for-bit. The rotation is *validated* as a unit
     * quaternion (within rounding slack) rather than renormalized:
     * renormalizing would perturb the last bits of every real pose and
     * break the save -> load -> save byte-identity contract, while a
     * grossly non-unit rotation is a corrupt file, not one to repair
     * silently.
     */
    bool
    pose(Pose &p, bool &unit)
    {
        double vals[7];
        for (double &v : vals)
            if (!pod(v))
                return false;
        p.rotation = Quat(vals[0], vals[1], vals[2], vals[3]);
        p.translation = Vec3{vals[4], vals[5], vals[6]};
        const double n = p.rotation.norm();
        unit = std::isfinite(n) && std::abs(n - 1.0) < 1e-6;
        return true;
    }

    bool
    skip(uint64_t n)
    {
        if (size_ - off_ < n)
            return false;
        off_ += n;
        return true;
    }

    size_t remaining() const { return size_ - off_; }
    size_t offset() const { return off_; }

    Reader
    sub(uint64_t n) const
    {
        return Reader(data_ + off_, static_cast<size_t>(n));
    }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t off_ = 0;
};

std::vector<uint8_t>
pointsPayload(const Map &map)
{
    Writer w;
    w.pod(static_cast<uint64_t>(map.points().size()));
    for (const MapPoint &p : map.points()) {
        w.pod(p.position[0]);
        w.pod(p.position[1]);
        w.pod(p.position[2]);
        for (uint64_t word : p.descriptor.bits)
            w.pod(word);
        w.pod(static_cast<int32_t>(p.observations));
    }
    return w.take();
}

std::vector<uint8_t>
keyframesPayload(const Map &map)
{
    Writer w;
    w.pod(static_cast<uint64_t>(map.keyframes().size()));
    for (const Keyframe &kf : map.keyframes()) {
        w.pod(static_cast<int32_t>(kf.id));
        w.pose(kf.pose);
        const auto n = static_cast<uint64_t>(kf.keypoints.size());
        w.pod(n);
        for (uint64_t i = 0; i < n; ++i) {
            const KeyPoint &kp = kf.keypoints[i];
            w.pod(kp.x);
            w.pod(kp.y);
            w.pod(kp.score);
            w.pod(kp.angle);
            for (uint64_t word : kf.descriptors[i].bits)
                w.pod(word);
            w.pod(static_cast<int32_t>(kf.map_point_ids[i]));
        }
        w.pod(static_cast<uint64_t>(kf.bow.size()));
        for (const auto &[word, value] : kf.bow) {
            w.pod(static_cast<int32_t>(word));
            w.pod(value);
        }
    }
    return w.take();
}

std::vector<uint8_t>
tilePayload(const Map &map)
{
    // The index is a pure function of positions + tile size, so only
    // the parameters ship; the loader rebuilds and cross-checks the
    // tile count as a cheap integrity test.
    Writer w;
    w.pod(map.tileSize());
    w.pod(static_cast<uint64_t>(map.tiles().size()));
    return w.take();
}

/** Minimum serialized entry sizes: allocation guards against corrupt
 *  counts (a bogus 2^60 count must fail the size check, not allocate). */
constexpr uint64_t kPointBytes = 3 * 8 + 4 * 8 + 4;
constexpr uint64_t kFeatureBytes = 4 * 4 + 4 * 8 + 4;
constexpr uint64_t kBowEntryBytes = 4 + 8;

bool
parsePoints(Reader r, Map &m, std::string &error)
{
    uint64_t count = 0;
    if (!r.pod(count) || count * kPointBytes > r.remaining()) {
        error = "corrupt landmark section (count exceeds section size)";
        return false;
    }
    for (uint64_t i = 0; i < count; ++i) {
        MapPoint p;
        int32_t obs = 0;
        bool ok = r.pod(p.position[0]) && r.pod(p.position[1]) &&
                  r.pod(p.position[2]);
        for (uint64_t &word : p.descriptor.bits)
            ok = ok && r.pod(word);
        ok = ok && r.pod(obs);
        if (!ok) {
            error = "truncated landmark section";
            return false;
        }
        p.observations = obs;
        m.addPoint(p);
    }
    return true;
}

bool
parseKeyframes(Reader r, Map &m, std::string &error)
{
    uint64_t count = 0;
    if (!r.pod(count) || count * (4 + 7 * 8 + 8 + 8) > r.remaining()) {
        error = "corrupt keyframe section (count exceeds section size)";
        return false;
    }
    for (uint64_t i = 0; i < count; ++i) {
        Keyframe kf;
        int32_t id = 0;
        uint64_t features = 0;
        bool unit = false;
        if (!r.pod(id) || !r.pose(kf.pose, unit) || !r.pod(features) ||
            features * kFeatureBytes > r.remaining()) {
            error = "truncated keyframe section";
            return false;
        }
        if (id != static_cast<int32_t>(i)) {
            error = "corrupt keyframe section (non-contiguous ids)";
            return false;
        }
        if (!unit) {
            error = "corrupt keyframe section (non-unit rotation)";
            return false;
        }
        kf.keypoints.resize(features);
        kf.descriptors.resize(features);
        kf.map_point_ids.resize(features);
        for (uint64_t k = 0; k < features; ++k) {
            KeyPoint &kp = kf.keypoints[k];
            int32_t lm = -1;
            bool ok = r.pod(kp.x) && r.pod(kp.y) && r.pod(kp.score) &&
                      r.pod(kp.angle);
            for (uint64_t &word : kf.descriptors[k].bits)
                ok = ok && r.pod(word);
            ok = ok && r.pod(lm);
            if (!ok) {
                error = "truncated keyframe section";
                return false;
            }
            if (lm < -1 || lm >= m.pointCount()) {
                error = "corrupt keyframe section (landmark id out of "
                        "range)";
                return false;
            }
            kf.map_point_ids[k] = lm;
        }
        uint64_t bow = 0;
        if (!r.pod(bow) || bow * kBowEntryBytes > r.remaining()) {
            error = "truncated keyframe section";
            return false;
        }
        for (uint64_t k = 0; k < bow; ++k) {
            int32_t word = 0;
            double value = 0.0;
            if (!r.pod(word) || !r.pod(value)) {
                error = "truncated keyframe section";
                return false;
            }
            kf.bow[word] = value;
        }
        m.addKeyframe(std::move(kf));
    }
    return true;
}

bool
parseTileIndex(Reader r, Map &m, std::string &error)
{
    double tile_size = 0.0;
    uint64_t tile_count = 0;
    if (!r.pod(tile_size) || !r.pod(tile_count)) {
        error = "truncated tile-index section";
        return false;
    }
    if (!(tile_size > 0.0) || tile_size > 1e9) {
        error = "corrupt tile-index section (bad tile size)";
        return false;
    }
    m.buildTileIndex(tile_size);
    if (m.tiles().size() != tile_count) {
        error = "corrupt tile-index section (tile count mismatch)";
        return false;
    }
    return true;
}

} // namespace

std::vector<uint8_t>
saveMapToBuffer(const Map &map)
{
    struct Section
    {
        MapSection id;
        std::vector<uint8_t> payload;
    };
    std::vector<Section> sections;
    sections.push_back({MapSection::Points, pointsPayload(map)});
    sections.push_back({MapSection::Keyframes, keyframesPayload(map)});
    if (map.tileSize() > 0.0)
        sections.push_back({MapSection::TileIndex, tilePayload(map)});

    Writer w;
    w.pod(kMapFormatMagic);
    w.pod(kMapFormatMajor);
    w.pod(kMapFormatMinor);
    w.pod(static_cast<uint32_t>(sections.size()));
    for (const Section &s : sections) {
        w.pod(static_cast<uint32_t>(s.id));
        w.pod(static_cast<uint64_t>(s.payload.size()));
        w.bytes(s.payload);
    }
    return w.take();
}

bool
saveMap(const Map &map, const std::string &path)
{
    const std::vector<uint8_t> buf = saveMapToBuffer(map);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
    return std::fclose(f) == 0 && ok;
}

MapLoadResult
loadMapFromBuffer(const uint8_t *data, size_t size)
{
    MapLoadResult res;
    Reader r(data, size);

    uint32_t magic = 0;
    if (!r.pod(magic)) {
        res.error = "truncated header (file smaller than the magic)";
        return res;
    }
    if (magic != kMapFormatMagic) {
        res.error = "not a map file (bad magic)";
        return res;
    }
    uint32_t section_count = 0;
    if (!r.pod(res.version_major) || !r.pod(res.version_minor) ||
        !r.pod(section_count)) {
        res.error = "truncated header";
        return res;
    }
    if (res.version_major > kMapFormatMajor) {
        res.error = "unsupported map format major version " +
                    std::to_string(res.version_major) +
                    " (reader supports up to " +
                    std::to_string(kMapFormatMajor) + ")";
        return res;
    }

    Map m;
    bool saw_points = false;
    for (uint32_t i = 0; i < section_count; ++i) {
        uint32_t id = 0;
        uint64_t bytes = 0;
        if (!r.pod(id) || !r.pod(bytes) || bytes > r.remaining()) {
            res.error = "truncated section table (section " +
                        std::to_string(i) + " of " +
                        std::to_string(section_count) + ")";
            return res;
        }
        Reader payload = r.sub(bytes);
        r.skip(bytes);
        switch (static_cast<MapSection>(id)) {
          case MapSection::Points:
            if (!parsePoints(payload, m, res.error))
                return res;
            saw_points = true;
            break;
          case MapSection::Keyframes:
            // Landmark ids validate against the point table, so the
            // canonical order matters.
            if (!saw_points) {
                res.error = "corrupt file (keyframe section precedes "
                            "landmark section)";
                return res;
            }
            if (!parseKeyframes(payload, m, res.error))
                return res;
            break;
          case MapSection::TileIndex:
            if (!parseTileIndex(payload, m, res.error))
                return res;
            break;
          default:
            // Forward tolerance: a newer minor version appended a
            // section this reader does not know; its declared size
            // already advanced the cursor.
            ++res.skipped_sections;
            break;
        }
    }

    res.map = std::move(m);
    return res;
}

MapLoadResult
loadMap(const std::string &path)
{
    MapLoadResult res;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        res.error = "cannot open '" + path + "'";
        return res;
    }
    std::vector<uint8_t> buf;
    uint8_t chunk[1 << 16];
    size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        buf.insert(buf.end(), chunk, chunk + n);
    const bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err) {
        res.error = "read error on '" + path + "'";
        return res;
    }
    return loadMapFromBuffer(buf.data(), buf.size());
}

} // namespace edx
