#include "sensors/dead_reckoning.hpp"

#include <cmath>

namespace edx {

void
DeadReckoner::seed(const Pose &world_from_body, double t,
                   const Vec3 &velocity)
{
    q_wb_ = world_from_body.rotation;
    p_wb_ = world_from_body.translation;
    v_ = velocity;
    t_ = t;
    seeded_ = true;
}

void
DeadReckoner::stepImu(const ImuSample &s, double dt, bool integrate_accel)
{
    q_wb_ = q_wb_.integrated(s.gyro, dt);
    if (integrate_accel) {
        const Vec3 a_world =
            q_wb_.toRotationMatrix() * s.accel + gravityWorld();
        const double leak = std::exp(-cfg_.velocity_damping * dt);
        v_ = v_ * leak + a_world * dt;
        p_wb_ += v_ * dt;
    }
    t_ = s.t;
}

void
DeadReckoner::propagate(const std::vector<ImuSample> &imu,
                        const std::vector<WheelOdometrySample> &odometry,
                        double frame_t)
{
    if (!seeded_)
        return;

    bool have_wheels = false;
    if (cfg_.use_wheel_odometry) {
        for (const WheelOdometrySample &o : odometry)
            have_wheels |= o.valid;
    }

    if (have_wheels) {
        // Orientation from the gyro stream, position from the wheels:
        // walk both streams merged in time order so the body-frame
        // forward direction used for each wheel step reflects the
        // latest attitude.
        size_t ii = 0;
        for (const WheelOdometrySample &o : odometry) {
            if (!o.valid)
                continue;
            // Strictly-before: a gyro sample stamped exactly at the
            // wheel reading must not advance t_ onto it first, or the
            // wheel step would collapse to dt = 0.
            while (ii < imu.size() && imu[ii].t < o.t) {
                const double dt = imu[ii].t - t_;
                if (dt > 0.0 && dt <= cfg_.max_step_s)
                    stepImu(imu[ii], dt, /*integrate_accel=*/false);
                else if (dt > cfg_.max_step_s)
                    t_ = imu[ii].t;
                ++ii;
            }
            const double dt = o.t - t_;
            if (dt > 0.0 && dt <= cfg_.max_step_s) {
                // Non-holonomic step: forward speed along body x, yaw
                // from the encoder when the gyro stream is absent.
                if (imu.empty())
                    q_wb_ = q_wb_.integrated(
                        Vec3{0.0, 0.0, o.yaw_rate}, dt);
                const Vec3 fwd =
                    q_wb_.toRotationMatrix() * Vec3{1.0, 0.0, 0.0};
                p_wb_ += fwd * (o.v_forward * dt);
                v_ = fwd * o.v_forward;
                t_ = o.t;
            } else if (dt > cfg_.max_step_s) {
                t_ = o.t;
            }
        }
        // Trailing gyro samples after the last wheel reading.
        for (; ii < imu.size(); ++ii) {
            const double dt = imu[ii].t - t_;
            if (dt > 0.0 && dt <= cfg_.max_step_s)
                stepImu(imu[ii], dt, /*integrate_accel=*/false);
            else if (dt > cfg_.max_step_s)
                t_ = imu[ii].t;
        }
    } else {
        for (const ImuSample &s : imu) {
            const double dt = s.t - t_;
            if (dt > 0.0 && dt <= cfg_.max_step_s)
                stepImu(s, dt, /*integrate_accel=*/true);
            else if (dt > cfg_.max_step_s)
                t_ = s.t; // gap: re-anchor, never integrate across it
        }
    }

    // Advance to the frame boundary. With wheels or a live IMU the
    // remaining slice is sub-sample-period; coast it on the current
    // velocity. With neither stream the pose simply holds.
    const double rem = frame_t - t_;
    if (rem > 0.0 && rem <= cfg_.max_step_s && !imu.empty())
        p_wb_ += v_ * rem;
    if (rem > 0.0)
        t_ = frame_t;
}

} // namespace edx
