/**
 * @file
 * Internal-sensor dead reckoning: the fallback backend the localizer
 * degrades to when vision collapses (core/health.hpp).
 *
 * The reckoner propagates a 6 DoF pose from sensors that do not
 * depend on the environment: gyro integration for orientation, and —
 * in preference order — wheel odometry (non-holonomic body-frame
 * forward speed) or damped accelerometer double-integration for
 * position. It is deliberately *not* a filter: no covariance, no
 * updates, nothing to diverge. Drift is unbounded but smooth and
 * slow, which is exactly the contract a degraded robot needs: a
 * continuous, explicitly-flagged pose stream that stays close to
 * truth over blackout windows of seconds, and a sane re-entry point
 * for the vision backend when imagery returns.
 *
 * The accelerometer path leaks velocity toward zero
 * (velocity_damping): raw double integration of a MEMS accelerometer
 * diverges quadratically within seconds, while a leaky integrator
 * bounds the error at the cost of under-reporting sustained
 * acceleration — the standard trade for a short-horizon fallback.
 *
 * Each healthy vision frame re-seeds the reckoner (seed()), so the
 * propagation horizon is always "since the last good frame", never
 * the whole run.
 */
#pragma once

#include <vector>

#include "math/se3.hpp"
#include "sensors/imu.hpp"
#include "sensors/odometry.hpp"

namespace edx {

/** Dead-reckoning settings. */
struct DeadReckoningConfig
{
    /**
     * Velocity leak rate of the accelerometer path, 1/s: v decays by
     * exp(-damping * dt) per step. 0 is pure (divergent) integration.
     */
    double velocity_damping = 0.6;

    /** Reject IMU/odometry steps larger than this (sensor gap), s. */
    double max_step_s = 0.5;

    /** Prefer wheel odometry over the accelerometer when available. */
    bool use_wheel_odometry = true;
};

/** The internal-sensor fallback propagator. */
class DeadReckoner
{
  public:
    explicit DeadReckoner(const DeadReckoningConfig &cfg = {})
        : cfg_(cfg)
    {}

    /**
     * Anchors the reckoner at a trusted pose (a vision-confirmed
     * solve, or the session's initialization pose).
     */
    void seed(const Pose &world_from_body, double t,
              const Vec3 &velocity = Vec3::zero());

    /**
     * Propagates through one frame's internal-sensor batch.
     * Non-monotonic or duplicate timestamps are rejected, gaps larger
     * than max_step_s re-anchor the clock without integrating (the
     * same hardening as the MSCKF propagation). When the batch
     * carries valid wheel odometry the position comes from the
     * non-holonomic wheel model; otherwise from damped accelerometer
     * integration. @p frame_t advances the clock even when both
     * streams are empty (the pose then holds).
     */
    void propagate(const std::vector<ImuSample> &imu,
                   const std::vector<WheelOdometrySample> &odometry,
                   double frame_t);

    /** Current propagated world-from-body pose. */
    Pose pose() const { return Pose(q_wb_, p_wb_); }

    /** Current velocity estimate, world frame. */
    const Vec3 &velocity() const { return v_; }

    double time() const { return t_; }
    bool seeded() const { return seeded_; }

    const DeadReckoningConfig &config() const { return cfg_; }

  private:
    void stepImu(const ImuSample &s, double dt, bool integrate_accel);

    DeadReckoningConfig cfg_;
    Quat q_wb_;
    Vec3 p_wb_;
    Vec3 v_;
    double t_ = 0.0;
    bool seeded_ = false;
};

} // namespace edx
