/**
 * @file
 * GPS sample type and the environment-dependent availability model.
 *
 * GPS provides the 3 translational DoF but (1) gives no rotation, (2) is
 * blocked indoors, and (3) suffers multi-path glitches even outdoors
 * (Sec. II of the paper). The model here reproduces those three
 * behaviours so the fusion backend faces realistic inputs.
 */
#pragma once

#include "math/rng.hpp"
#include "math/vec.hpp"

namespace edx {

/** One GPS fix. */
struct GpsSample
{
    double t = 0.0;   //!< timestamp, seconds
    Vec3 position;    //!< world-frame position, meters
    double sigma = 1.0; //!< reported 1-sigma accuracy, meters
    bool valid = false; //!< false when no fix (indoors / outage)
};

/** GPS receiver error model. */
struct GpsNoiseModel
{
    double sigma = 0.6;          //!< nominal horizontal accuracy, m
    double sigma_vertical = 1.2; //!< vertical accuracy, m
    double multipath_prob = 0.02; //!< per-fix probability of a glitch
    double multipath_bias = 6.0;  //!< glitch magnitude, m
    double outage_prob = 0.01;    //!< per-fix probability of a dropout
};

/** Corrupts perfect positions into GPS fixes. */
class GpsCorruptor
{
  public:
    GpsCorruptor(const GpsNoiseModel &model, bool signal_available,
                 uint64_t seed)
        : model_(model), available_(signal_available), rng_(seed)
    {}

    /** Generates the fix for a true position at time @p t. */
    GpsSample
    sample(double t, const Vec3 &true_position)
    {
        GpsSample s;
        s.t = t;
        if (!available_ || rng_.uniform() < model_.outage_prob) {
            s.valid = false;
            return s;
        }
        s.valid = true;
        s.sigma = model_.sigma;
        s.position = true_position +
                     Vec3{rng_.gaussian(0, model_.sigma),
                          rng_.gaussian(0, model_.sigma),
                          rng_.gaussian(0, model_.sigma_vertical)};
        if (rng_.uniform() < model_.multipath_prob) {
            // Multi-path: a correlated horizontal offset, under-reported
            // by the receiver's accuracy estimate.
            double ang = rng_.uniform(0, 6.283185307179586);
            double mag = model_.multipath_bias * (0.5 + rng_.uniform());
            s.position += Vec3{mag * std::cos(ang), mag * std::sin(ang),
                               0.0};
        }
        return s;
    }

    bool available() const { return available_; }

  private:
    GpsNoiseModel model_;
    bool available_;
    Rng rng_;
};

} // namespace edx
