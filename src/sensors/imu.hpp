/**
 * @file
 * IMU sample types and the stochastic error model.
 *
 * An IMU supplies relative 6 DoF information by combining a gyroscope
 * and an accelerometer (Sec. II of the paper); samples are noisy and
 * biased, which is why VIO drifts without external correction. The noise
 * model here is the standard continuous-time white noise + bias random
 * walk discretized at the sample rate.
 */
#pragma once

#include <vector>

#include "math/rng.hpp"
#include "math/vec.hpp"

namespace edx {

/** One IMU measurement. */
struct ImuSample
{
    double t = 0.0;   //!< timestamp, seconds
    Vec3 gyro;        //!< angular velocity, rad/s, body frame
    Vec3 accel;       //!< specific force, m/s^2, body frame
};

/** Continuous-time IMU noise densities (typical MEMS-grade values). */
struct ImuNoiseModel
{
    double gyro_noise = 1.7e-3;      //!< rad/s/sqrt(Hz)
    double gyro_bias_walk = 2.0e-5;  //!< rad/s^2/sqrt(Hz)
    double accel_noise = 2.0e-2;     //!< m/s^2/sqrt(Hz)
    double accel_bias_walk = 3.0e-3; //!< m/s^3/sqrt(Hz)
};

/**
 * Applies the IMU error model to a perfect measurement stream: tracks a
 * random-walk bias per axis and adds discretized white noise.
 */
class ImuCorruptor
{
  public:
    ImuCorruptor(const ImuNoiseModel &model, double rate_hz, uint64_t seed)
        : model_(model), dt_(1.0 / rate_hz), rng_(seed)
    {}

    /** Corrupts one perfect sample (called in timestamp order). */
    ImuSample
    corrupt(const ImuSample &clean)
    {
        const double sqrt_dt = std::sqrt(dt_);
        ImuSample out = clean;
        for (int i = 0; i < 3; ++i) {
            gyro_bias_[i] +=
                model_.gyro_bias_walk * sqrt_dt * rng_.gaussian();
            accel_bias_[i] +=
                model_.accel_bias_walk * sqrt_dt * rng_.gaussian();
            out.gyro[i] += gyro_bias_[i] +
                           model_.gyro_noise / sqrt_dt * rng_.gaussian();
            out.accel[i] += accel_bias_[i] +
                            model_.accel_noise / sqrt_dt * rng_.gaussian();
        }
        return out;
    }

    const Vec3 &gyroBias() const { return gyro_bias_; }
    const Vec3 &accelBias() const { return accel_bias_; }

  private:
    ImuNoiseModel model_;
    double dt_;
    Rng rng_;
    Vec3 gyro_bias_;
    Vec3 accel_bias_;
};

/** Standard gravity in the world frame (z up). */
inline Vec3
gravityWorld()
{
    return Vec3{0.0, 0.0, -9.81};
}

/**
 * Drops samples whose timestamps do not strictly increase (duplicate
 * or regressed stamps — bus stalls and clock steps produce both on
 * real robots). Integrators divide by dt, so a single duplicate stamp
 * upstream of an unguarded filter is a NaN factory; batches handed to
 * propagation must pass through this (or an equivalent per-sample dt
 * guard) first. Returns the number of samples removed.
 */
inline int
sanitizeImuBatch(std::vector<ImuSample> &batch)
{
    int removed = 0;
    size_t w = 0;
    for (size_t r = 0; r < batch.size(); ++r) {
        if (w > 0 && batch[r].t <= batch[w - 1].t + 1e-12) {
            ++removed;
            continue;
        }
        if (w != r)
            batch[w] = batch[r];
        ++w;
    }
    batch.resize(w);
    return removed;
}

} // namespace edx
