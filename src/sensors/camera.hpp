/**
 * @file
 * Pinhole camera model and rectified stereo rig.
 *
 * The camera model supplies projection and its Jacobians to every part
 * of the system: the synthetic renderer (forward projection), MSCKF
 * measurement updates, bundle-adjustment residuals, and the registration
 * backend's "Projection" kernel.
 */
#pragma once

#include <optional>

#include "math/mat.hpp"
#include "math/se3.hpp"
#include "math/vec.hpp"

namespace edx {

/** Pinhole intrinsics (no distortion; the rig is assumed rectified). */
struct CameraIntrinsics
{
    double fx = 400.0;
    double fy = 400.0;
    double cx = 320.0;
    double cy = 240.0;
    int width = 640;
    int height = 480;

    /** The 3x3 intrinsic matrix K. */
    Mat3
    matrix() const
    {
        return Mat3{fx, 0, cx, 0, fy, cy, 0, 0, 1};
    }

    /**
     * Projects a point in the camera frame to pixels.
     * @return nullopt when the point is at or behind the camera plane.
     */
    std::optional<Vec2>
    project(const Vec3 &p_cam) const
    {
        if (p_cam[2] <= 1e-6)
            return std::nullopt;
        return Vec2{fx * p_cam[0] / p_cam[2] + cx,
                    fy * p_cam[1] / p_cam[2] + cy};
    }

    /** @return true when the pixel lies inside the image bounds. */
    bool
    inImage(const Vec2 &px, double border = 0.0) const
    {
        return px[0] >= border && px[0] < width - border &&
               px[1] >= border && px[1] < height - border;
    }

    /**
     * Jacobian of the projection with respect to the camera-frame point,
     * evaluated at @p p_cam (which must have positive depth).
     */
    Mat23
    projectJacobian(const Vec3 &p_cam) const
    {
        double iz = 1.0 / p_cam[2];
        double iz2 = iz * iz;
        return Mat23{fx * iz, 0.0, -fx * p_cam[0] * iz2,
                     0.0, fy * iz, -fy * p_cam[1] * iz2};
    }

    /** Back-projects pixel + depth to a camera-frame point. */
    Vec3
    backProject(const Vec2 &px, double depth) const
    {
        return Vec3{(px[0] - cx) / fx * depth, (px[1] - cy) / fy * depth,
                    depth};
    }
};

/**
 * A rectified stereo rig: two identical pinhole cameras separated by a
 * pure horizontal baseline. Disparity d of a point at depth z satisfies
 * d = fx * baseline / z.
 */
struct StereoRig
{
    CameraIntrinsics cam;
    double baseline = 0.12; //!< meters, right camera at +x in left frame
    Pose body_from_camera;  //!< extrinsics: camera frame in body frame

    /** Depth from disparity (pixels); nullopt for non-positive input. */
    std::optional<double>
    depthFromDisparity(double disparity) const
    {
        if (disparity <= 1e-6)
            return std::nullopt;
        return cam.fx * baseline / disparity;
    }

    /** Disparity from depth (meters). */
    double
    disparityFromDepth(double depth) const
    {
        return cam.fx * baseline / depth;
    }

    /** Projects a left-camera-frame point into the right camera. */
    std::optional<Vec2>
    projectRight(const Vec3 &p_left) const
    {
        return cam.project(p_left - Vec3{baseline, 0.0, 0.0});
    }

    /**
     * Triangulates a left-camera-frame 3-D point from a left pixel and a
     * disparity measurement.
     */
    std::optional<Vec3>
    triangulate(const Vec2 &px_left, double disparity) const
    {
        auto depth = depthFromDisparity(disparity);
        if (!depth)
            return std::nullopt;
        return cam.backProject(px_left, *depth);
    }
};

} // namespace edx
