/**
 * @file
 * Wheel-odometry sample type and error model.
 *
 * Wheel encoders are the canonical *internal* sensor of ground
 * vehicles: unlike cameras and GPS they keep working in the dark, in
 * rain, and underground (the bulldozer self-localization setting in
 * PAPERS.md), which is what makes them the backbone of the
 * dead-reckoning fallback. The model follows the usual differential-
 * drive abstraction — forward speed plus yaw rate in the body frame —
 * with the two dominant error sources of real encoders: a slowly
 * varying scale factor (tire wear / pressure / slip) and white noise.
 */
#pragma once

#include "math/rng.hpp"
#include "math/vec.hpp"

namespace edx {

/** One wheel-odometry measurement. */
struct WheelOdometrySample
{
    double t = 0.0;          //!< timestamp, seconds
    double v_forward = 0.0;  //!< body-frame forward speed, m/s
    double yaw_rate = 0.0;   //!< body-frame yaw rate, rad/s
    bool valid = false;      //!< false when the encoder stream is down
};

/** Wheel-encoder error model. */
struct WheelOdometryNoiseModel
{
    double speed_noise = 0.03;     //!< m/s white noise per sample
    double yaw_rate_noise = 0.004; //!< rad/s white noise per sample
    double scale_error = 0.01;     //!< constant speed scale offset (1%)
    double scale_walk = 1e-4;      //!< per-sample scale random walk
};

/** Corrupts perfect (speed, yaw rate) pairs into encoder readings. */
class WheelOdometryCorruptor
{
  public:
    WheelOdometryCorruptor(const WheelOdometryNoiseModel &model,
                           uint64_t seed)
        : model_(model), rng_(seed), scale_(1.0 + model.scale_error)
    {}

    /** Generates the reading for a true (speed, yaw rate) at @p t. */
    WheelOdometrySample
    sample(double t, double true_v_forward, double true_yaw_rate)
    {
        scale_ += model_.scale_walk * rng_.gaussian();
        WheelOdometrySample s;
        s.t = t;
        s.v_forward = scale_ * true_v_forward +
                      rng_.gaussian(0, model_.speed_noise);
        s.yaw_rate =
            true_yaw_rate + rng_.gaussian(0, model_.yaw_rate_noise);
        s.valid = true;
        return s;
    }

  private:
    WheelOdometryNoiseModel model_;
    Rng rng_;
    double scale_;
};

} // namespace edx
