/**
 * @file
 * Model-driven stage placement for the N-stage frame pipeline.
 *
 * The 2-stage pipeline always split frontend|backend; after the
 * frontend/backend kernel overhauls that split is unbalanced (the
 * ROADMAP's "accelerator-model-aware stage placement" item): on the
 * dense-keyframing SLAM car scene the BA solver dominates the backend
 * while SM is nearly free, so throughput is set by one fat stage. The
 * planner chooses the cut points per platform by minimizing the max
 * predicted stage time over the frame's sub-stage graph
 * (FE | SM | TM | solve | finish):
 *
 *  1. profileFromTelemetry() fits a KernelLatencyModel-style predictor
 *     per sub-stage from a profiling run's telemetry stream — latency
 *     against the sub-stage's workload driver (pixels, candidates,
 *     tracks, mode-kernel driver), linear or quadratic exactly like the
 *     offload scheduler's fits (Sec. VI-B) — and evaluates it at the
 *     run's mean driver sizes.
 *  2. profileAccelerated() instead prices the sub-stages on a platform
 *     accelerator (hw/frontend_accel.hpp task models for FE/SM/TM; the
 *     backend kernel swapped for its hw/backend_accel.hpp cost), so the
 *     planner can place stages for EDX-CAR vs EDX-DRONE.
 *  3. plan() scans every cut subset (2^4) and returns the one with the
 *     smallest max stage time, preferring fewer stages on ties.
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "hw/config.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

/**
 * Measured software latency of sub-stage @p node in one frame's
 * telemetry (the planner's fit targets; also how the benches derive
 * core-count-independent pipelined FPS from an uncontended run).
 */
double pipeNodeMs(const FrameTelemetry &t, BackendMode mode, int node);

/** Predicted per-sub-stage latency at a profiled workload. */
struct NodeProfile
{
    std::array<double, kPipelineNodes> node_ms{};

    double
    totalMs() const
    {
        double s = 0.0;
        for (double v : node_ms)
            s += v;
        return s;
    }
};

/** A chosen topology with its predicted timing. */
struct StagePlan
{
    std::vector<int> cuts;
    std::array<double, kPipelineNodes> node_ms{};
    std::vector<double> stage_ms;  //!< predicted per-stage time, in order
    double period_ms = 0.0;     //!< max predicted stage time
    double sequential_ms = 0.0; //!< sum of all sub-stages

    int stages() const { return static_cast<int>(cuts.size()) + 1; }

    /** Predicted steady-state FPS of the planned topology. */
    double
    fps() const
    {
        return period_ms > 0.0 ? 1000.0 / period_ms : 0.0;
    }

    /** "FE | SM+TM | SOLVE | FIN"-style topology string. */
    std::string describe() const { return describeCuts(cuts); }
};

/** The placement planner. */
class PlacementPlanner
{
  public:
    /**
     * Per-sub-stage latency profile from a (sequential) profiling
     * run's telemetry, via per-node latency-vs-driver fits.
     */
    static NodeProfile
    profileFromTelemetry(const std::vector<FrameTelemetry> &frames,
                         BackendMode mode);

    /**
     * Like profileFromTelemetry(), but with the sub-stages priced on
     * the platform accelerator: FE/SM/TM from the frontend task models
     * and the mode's variation-dominating backend kernel swapped for
     * its accelerator cost (compute + DMA).
     */
    static NodeProfile
    profileAccelerated(const std::vector<FrameTelemetry> &frames,
                       BackendMode mode, const AcceleratorConfig &acfg);

    /**
     * Minimizes the max stage time over every cut subset with at most
     * @p max_stages stages. Ties prefer fewer stages, then earlier
     * cut lists.
     */
    static StagePlan plan(const NodeProfile &profile,
                          int max_stages = kPipelineNodes);

    /** Max stage time of @p cuts under @p profile. */
    static double periodFor(const NodeProfile &profile,
                            const std::vector<int> &cuts);

    /** Per-stage times of @p cuts under @p profile, in stage order. */
    static std::vector<double>
    stageTimesFor(const NodeProfile &profile,
                  const std::vector<int> &cuts);
};

} // namespace edx
