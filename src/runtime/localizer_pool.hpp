/**
 * @file
 * Multi-session serving: N independent Localizer sessions over shared
 * read-only assets.
 *
 * A deployment serves many robots at once (the ROADMAP's production
 * target); each robot is an independent localization *session*, but
 * the heavyweight assets — the trained BoW vocabulary and the prior
 * map — are immutable and shared by every session (the multi-mission
 * structure of maplab-style systems).
 *
 * Scheduling is actor-style: every session owns a FIFO of pending
 * frames and is processed by at most one worker at a time, so frames
 * of one session retain submission order (localizers are stateful and
 * order-sensitive) while different sessions run concurrently across
 * the worker pool. A global bound on queued frames gives submit()
 * backpressure, mirroring the single-session pipeline.
 */
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/localizer.hpp"
#include "runtime/solve_hub.hpp"

namespace edx {

/** Pool sizing. */
struct PoolConfig
{
    int workers = 2;           //!< worker threads shared by all sessions
    size_t queue_capacity = 16; //!< global bound on queued frames

    /**
     * Batch same-mode backend kernels (projection / Kalman gain /
     * marginalization) across concurrently running sessions through a
     * shared SolveHub — one blocked solve instead of N independent
     * ones, with bit-identical poses (the ROADMAP's "batched backend
     * solves"). Off by default.
     */
    bool batch_solves = false;

    /**
     * Gang window: align concurrent sessions' backend stages so the
     * SolveHub observes batch sizes near the session count instead of
     * whoever happens to rendezvous. Frames run their frontend as they
     * arrive, then park at the window; once every in-flight frame has
     * reached it the pool releases up to `workers` backends together,
     * pre-announcing the group to the hub so their first kernel
     * requests rendezvous at full width. Per-session pose streams stay
     * bit-identical (the window changes *when* a backend runs, never
     * what it computes). Implies batch_solves.
     */
    bool gang_window = false;
};

/** One completed frame of one session. */
struct PoolResult
{
    int session_id = -1;
    LocalizationResult result;
};

/** Serves N concurrent localization sessions. */
class LocalizerPool
{
  public:
    explicit LocalizerPool(const PoolConfig &cfg = {});

    /** Drains all sessions and joins the workers. */
    ~LocalizerPool();

    LocalizerPool(const LocalizerPool &) = delete;
    LocalizerPool &operator=(const LocalizerPool &) = delete;

    /**
     * Registers a session built by the caller (e.g. sharing a
     * vocabulary/map across sessions). @return the session id.
     */
    int addSession(std::unique_ptr<Localizer> localizer);

    /**
     * Convenience: constructs the Localizer in place. The vocabulary
     * and prior map are borrowed read-only and shared across sessions;
     * they must outlive the pool.
     */
    int createSession(const LocalizerConfig &cfg, const StereoRig &rig,
                      const Vocabulary *vocabulary, const Map *prior_map,
                      const Pose &start_pose, double t0,
                      const Vec3 &start_velocity = Vec3::zero());

    /**
     * Enqueues a frame for @p session_id (taking ownership of its
     * images). Blocks while the global queue bound is reached. Returns
     * false after shutdown() or for an unknown session.
     */
    bool submit(int session_id, FrameInput input);

    /** Non-blocking: pops any completed frame. */
    bool poll(PoolResult &out);

    /** Blocks until a result is available (false: all work drained). */
    bool awaitResult(PoolResult &out);

    /** Blocks until every submitted frame has completed. */
    void drain();

    /** Drains and stops the workers; submit() fails afterwards. */
    void shutdown();

    int sessionCount() const;

    /**
     * Direct access to a session's localizer. Only safe when the
     * session has no in-flight frames (e.g. after drain()).
     */
    Localizer &session(int session_id);

    /** Batching counters of the shared hub (zeros when batching off). */
    SolveHubStats solveStats() const;

  private:
    struct Session
    {
        std::unique_ptr<Localizer> loc;
        std::deque<FrameInput> pending;
        bool running = false; //!< a worker currently owns this session

        // Gang window: the frame parked between its frontend and its
        // released backend (valid while this session sits in
        // gang_staged_ / gang_released_).
        FrameInput staged_input;
        FrontendOutput staged_fe;
    };

    void workerLoop();
    void finishFrame(int sid, PoolResult r); //!< under m_
    void maybeReleaseGang();                 //!< under m_

    PoolConfig cfg_;
    SolveHub hub_; //!< shared batching rendezvous (used when enabled)

    mutable std::mutex m_;
    std::condition_variable work_cv_;   //!< workers: runnable session
    std::condition_variable space_cv_;  //!< producers: queue space
    std::condition_variable result_cv_; //!< consumers: results / drain

    std::vector<std::unique_ptr<Session>> sessions_;
    std::deque<int> runnable_; //!< sessions with pending, not running
    size_t queued_frames_ = 0; //!< across all sessions
    long submitted_ = 0;
    long completed_ = 0;
    bool stopping_ = false;

    // Gang window state (gang_window only).
    int gang_frontends_ = 0;        //!< frames currently in a frontend
    int gang_outstanding_ = 0;      //!< released backends not yet done
    std::deque<int> gang_staged_;   //!< sessions parked at the window
    std::deque<int> gang_released_; //!< backends released to run

    std::deque<PoolResult> results_;
    std::vector<std::thread> workers_;
};

} // namespace edx
