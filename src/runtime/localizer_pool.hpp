/**
 * @file
 * Multi-session serving: N independent Localizer sessions over shared
 * read-only assets.
 *
 * A deployment serves many robots at once (the ROADMAP's production
 * target); each robot is an independent localization *session*, but
 * the heavyweight assets — the trained BoW vocabulary and the prior
 * map — are immutable and shared by every session (the multi-mission
 * structure of maplab-style systems).
 *
 * Scheduling is actor-style: every session owns a FIFO of pending
 * frames and is processed by at most one worker at a time, so frames
 * of one session retain submission order (localizers are stateful and
 * order-sensitive) while different sessions run concurrently across
 * the worker pool.
 *
 * **QoS admission control.** Robots' frames matter unequally: a
 * safety-critical vehicle's pose must not be starved by a fleet of
 * best-effort mapping robots, and under contention the pool must
 * degrade *selectively*, not uniformly. Every session carries a QoS
 * class, and the single global frame bound of the early pool is
 * replaced by a per-class admission controller:
 *
 *  - SAFETY_CRITICAL frames admit against a reserved queue quota that
 *    no other class can consume, and `PoolConfig::reserved_workers`
 *    worker slots are held back for them at dispatch.
 *  - STANDARD frames keep the classic blocking backpressure against
 *    their own quota.
 *  - BEST_EFFORT submit() never blocks: at quota the *class-oldest*
 *    pending frame is dropped (drop-oldest — a live robot wants the
 *    freshest frame, not the stalest), and an optional per-session
 *    frame deadline sheds frames that waited too long at dispatch.
 *
 * Dispatch picks safety-critical work first but rotates a 1-in-N
 * "first look" to best-effort sessions so reservation never starves
 * them entirely. Dropped frames are first-class: per-session drop and
 * queue-latency counters flow through PoolStats, and every completed
 * frame's telemetry records its admission->dispatch wait.
 */
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/localizer.hpp"
#include "map/map_service.hpp"
#include "runtime/replan.hpp"
#include "runtime/solve_hub.hpp"

namespace edx {

/** Session QoS classes, in dispatch-priority order. */
enum class QosClass
{
    SafetyCritical = 0, //!< reserved queue + worker capacity, never shed
    Standard = 1,       //!< blocking backpressure against its own quota
    BestEffort = 2,     //!< drop-oldest at quota, optional deadline drop
};

constexpr int kQosClasses = 3;

/** Display name of a QoS class ("safety-critical", ...). */
const char *qosClassName(QosClass q);

/** Per-session serving policy. */
struct SessionConfig
{
    QosClass qos = QosClass::Standard;

    /**
     * BEST_EFFORT only: a frame that waited longer than this between
     * admission and dispatch is dropped instead of processed (a stale
     * pose helps nobody). 0 disables the deadline.
     */
    double frame_deadline_ms = 0.0;

    /**
     * Attach this session to PoolConfig::map_service (no-op when the
     * pool has none). Off, the session keeps the legacy private-map
     * behavior even in a shared-map pool — e.g. a survey robot whose
     * map must stay quarantined until reviewed.
     */
    bool share_map = true;
};

/** Pool sizing and policy. */
struct PoolConfig
{
    /**
     * Worker threads shared by all sessions. With @ref elastic_workers
     * this is only the *initial* count — the pool then sizes itself.
     */
    int workers = 2;

    /**
     * Elastic worker scaling: the pool grows the worker set when
     * dispatched frames aged in their queues (the PR 5 queue-wait
     * telemetry — waiting frames mean the pool is parallelism-bound)
     * and retires workers that sat idle for @ref shrink_idle_ms, so
     * nobody hand-sizes the pool per platform. Growth is capped at
     * @ref max_workers; shrink never goes below reserved_workers + 1
     * (the safety reservation must stay dispatchable, and so must one
     * non-reserved slot). Off by default: a fixed `workers` count.
     */
    bool elastic_workers = false;

    /** Elastic growth bound. 0 = std::thread::hardware_concurrency()
     *  (never below `workers`). */
    int max_workers = 0;

    /** Elastic growth trigger: a dispatched frame that waited longer
     *  than this (ms) between admission and dispatch spawns a worker. */
    double grow_wait_ms = 2.0;

    /** Elastic shrink trigger: a worker idle this long (ms) retires. */
    double shrink_idle_ms = 250.0;

    /**
     * Queued-frame quota of the STANDARD class (the name predates the
     * QoS classes: it used to be the single global bound). Clamped to
     * >= 1.
     */
    size_t queue_capacity = 16;

    /**
     * Reserved queued-frame quota of the SAFETY_CRITICAL class. Only
     * safety-critical frames consume these slots. 0 defaults to
     * queue_capacity.
     */
    size_t safety_capacity = 0;

    /**
     * Queued-frame quota of the BEST_EFFORT class; at quota submit()
     * drops the class-oldest pending frame instead of blocking.
     * 0 defaults to queue_capacity.
     */
    size_t best_effort_capacity = 0;

    /**
     * Worker slots held back for safety-critical dispatch: non-safety
     * frames are dispatched only while fewer than
     * `workers - reserved_workers` of them are executing. Inert while
     * the pool has no safety-critical session. Clamped to
     * [0, workers - 1].
     */
    int reserved_workers = 0;

    /**
     * Anti-starvation rotation: every Nth dispatch offers best-effort
     * sessions the first look over *standard* ones (still subject to
     * reserved_workers), so a sustained standard backlog cannot starve
     * them entirely. Safety-critical work is never preempted by the
     * rotation: best-effort progresses in the gaps of the
     * safety-critical stream instead. 0 disables the rotation (pure
     * priority order).
     */
    int best_effort_share = 8;

    /**
     * Batch same-mode backend kernels (projection / Kalman gain /
     * marginalization) across concurrently running sessions through a
     * shared SolveHub — one blocked solve instead of N independent
     * ones, with bit-identical poses (the ROADMAP's "batched backend
     * solves"). Off by default.
     */
    bool batch_solves = false;

    /**
     * Gang window: align concurrent sessions' backend stages so the
     * SolveHub observes batch sizes near the session count instead of
     * whoever happens to rendezvous. Frames run their frontend as they
     * arrive, then park at the window; once every in-flight frame has
     * reached it the pool releases up to `workers` backends together,
     * pre-announcing the group to the hub so their first kernel
     * requests rendezvous at full width. Per-session pose streams stay
     * bit-identical (the window changes *when* a backend runs, never
     * what it computes). Implies batch_solves.
     */
    bool gang_window = false;

    /**
     * Bound on how long a formed wave waits for lagging in-flight
     * frontends (QoS composition: a best-effort session's slow
     * frontend must not hold a safety-critical backend hostage at the
     * window). On timeout the wave releases with a *narrower*
     * pre-announced width — only the frames already parked — and the
     * laggards join the next wave. Generous by default so healthy skew
     * between concurrent frontends never narrows a wave; 0 waits
     * indefinitely (the pre-QoS behavior).
     */
    double gang_timeout_ms = 2000.0;

    /**
     * Per-session online re-planning: every completed frame's telemetry
     * feeds the session's SessionReplanner (runtime/replan.hpp), and on
     * each tick a candidate cut list is fit from the live window and
     * adopted as the session's *recommended topology* when it clears
     * the hysteresis margin. The pool schedules whole frames (the
     * actor model never splits a session across workers), so the plan
     * is advisory here — it is what a staged per-session runtime
     * (FramePipeline) would be swapped to — but the counters and the
     * recommended cuts flow through PoolStats either way. Off by
     * default.
     */
    bool replan = false;
    ReplanConfig replan_cfg; //!< cadence/hysteresis when replan is on

    /**
     * Live shared-map service (map/map_service.hpp), borrowed; must
     * outlive the pool. Every added session with
     * SessionConfig::share_map attaches: SLAM sessions contribute
     * retired keyframes, registration sessions adopt published map
     * epochs at solve boundaries. Null keeps the classic read-only
     * shared-asset pool.
     */
    MapService *map_service = nullptr;
};

/** One completed frame of one session. */
struct PoolResult
{
    int session_id = -1;
    QosClass qos = QosClass::Standard;
    LocalizationResult result;
};

/** Per-session serving counters (drops are first-class outcomes). */
struct SessionPoolStats
{
    QosClass qos = QosClass::Standard;
    long submitted = 0; //!< frames admitted into the session queue
    long completed = 0; //!< frames that produced a PoolResult
    long dropped_oldest = 0;   //!< shed by drop-oldest at admission
    long dropped_deadline = 0; //!< shed by the frame deadline at dispatch
    double queue_wait_total_ms = 0.0; //!< admission -> dispatch, completed frames
    double queue_wait_max_ms = 0.0;

    /**
     * Tracking-quality accounting (core/health.hpp): the session's
     * health state after its latest completed frame, and how many
     * completed frames it spent in each state. Lets a fleet operator
     * spot a degraded session from the pool's serving counters without
     * touching per-frame telemetry.
     */
    TrackingHealth health = TrackingHealth::Nominal;
    std::array<long, kTrackingHealthStates> health_frames{};
    long dead_reckoned_frames = 0; //!< poses from the fallback reckoner

    /**
     * The session's recommended pipeline cut list under
     * PoolConfig::replan (empty = sequential / replanning off), plus
     * its adaptation counters.
     */
    std::vector<int> plan_cuts;
    ReplanStats replan;

    /**
     * Shared-map participation (PoolConfig::map_service): contribution
     * batches this session pushed into the service, the epoch its
     * registration tracker currently reads, and the worst observed
     * epoch-acquire latency — the solve-side cost of map sharing, which
     * the service's design bounds to a pointer copy.
     */
    long map_contributions = 0;
    uint64_t map_epoch = 0;
    double epoch_acquire_max_ms = 0.0;

    long dropped() const { return dropped_oldest + dropped_deadline; }

    double
    meanQueueWaitMs() const
    {
        return completed > 0 ? queue_wait_total_ms / completed : 0.0;
    }
};

/** Pool-wide serving counters. */
struct PoolStats
{
    std::vector<SessionPoolStats> sessions;
    long submitted = 0;
    long completed = 0;
    long dropped = 0;

    // Adaptation counters (elastic scaling + online re-planning).
    int workers = 0;           //!< current live worker count
    long workers_grown = 0;    //!< elastic spawns beyond the initial set
    long workers_retired = 0;  //!< workers retired on sustained idle
    long replans = 0;          //!< replan ticks evaluated, all sessions
    long swaps_applied = 0;    //!< plan changes adopted
    long swaps_rejected = 0;   //!< proposals held by hysteresis/min-data

    // Shared-map service counters (PoolConfig::map_service).
    bool map_service_attached = false;
    MapServiceStats map_service; //!< zeros when no service is attached
};

/** Serves N concurrent localization sessions. */
class LocalizerPool
{
  public:
    explicit LocalizerPool(const PoolConfig &cfg = {});

    /** Drains all sessions and joins the workers. */
    ~LocalizerPool();

    LocalizerPool(const LocalizerPool &) = delete;
    LocalizerPool &operator=(const LocalizerPool &) = delete;

    /**
     * Registers a session built by the caller (e.g. sharing a
     * vocabulary/map across sessions). @return the session id.
     */
    int addSession(std::unique_ptr<Localizer> localizer,
                   const SessionConfig &session = {});

    /**
     * Convenience: constructs the Localizer in place. The vocabulary
     * and prior map are borrowed read-only and shared across sessions;
     * they must outlive the pool.
     */
    int createSession(const LocalizerConfig &cfg, const StereoRig &rig,
                      const Vocabulary *vocabulary, const Map *prior_map,
                      const Pose &start_pose, double t0,
                      const Vec3 &start_velocity = Vec3::zero(),
                      const SessionConfig &session = {});

    /**
     * Enqueues a frame for @p session_id (taking ownership of its
     * images), subject to the session class's admission quota:
     * safety-critical and standard submissions block while their class
     * quota is reached; best-effort submissions never block (at quota
     * the class-oldest pending frame is dropped and counted). Returns
     * false after shutdown().
     * @throws std::out_of_range for an unknown session id.
     */
    bool submit(int session_id, FrameInput input);

    /**
     * Admits a batch of frames under one lock hold, so the workers
     * observe the whole batch at once — a lockstep driver (replay,
     * benchmark, synchronized multi-robot ingest) submitting one frame
     * per session must not race worker dispatch, or the gang window
     * sees a lone early arrival and releases a narrow wave. Per-frame
     * admission rules match submit(); a safety/standard frame that
     * hits its class quota still waits for space (releasing the lock,
     * so the already-admitted prefix becomes visible early — size the
     * queue for the batch when atomicity matters). @return the number
     * of frames admitted.
     * @throws std::out_of_range for an unknown session id.
     */
    int submitBatch(std::vector<std::pair<int, FrameInput>> frames);

    /** Non-blocking: pops any completed frame. */
    bool poll(PoolResult &out);

    /**
     * Blocks until a result is available. Returns false only once the
     * pool is shutting down and every admitted frame has completed or
     * been dropped — a transient "nothing in flight" gap between two
     * producer submissions never ends a consumer loop.
     */
    bool awaitResult(PoolResult &out);

    /**
     * Blocks until every admitted frame has completed or been dropped,
     * including frames of producers currently parked inside submit()
     * (an in-flight submitter is visible to drain — its frame cannot
     * be silently lost to a concurrent shutdown).
     */
    void drain();

    /** Drains and stops the workers; submit() fails afterwards. Safe
     *  to call concurrently: late callers block until the first
     *  caller's shutdown completes. */
    void shutdown();

    int sessionCount() const;

    /**
     * Direct access to a session's localizer. Only safe when the
     * session has no in-flight frames (e.g. after drain()).
     * @throws std::out_of_range for an unknown session id.
     */
    Localizer &session(int session_id);

    /** Batching counters of the shared hub (zeros when batching off). */
    SolveHubStats solveStats() const;

    /** Per-session and pool-wide serving counters. */
    PoolStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** A frame admitted into a session queue. */
    struct PendingFrame
    {
        FrameInput input;
        long admit_seq = 0; //!< pool-wide admission order (drop-oldest)
        Clock::time_point admit_time;
    };

    struct Session
    {
        std::unique_ptr<Localizer> loc;
        SessionConfig cfg;
        std::deque<PendingFrame> pending;
        bool running = false; //!< a worker currently owns this session
        SessionPoolStats stats;

        // Gang window: the frame parked between its frontend and its
        // released backend (valid while this session sits in
        // gang_staged_ / gang_released_).
        FrameInput staged_input;
        FrontendOutput staged_fe;
        double staged_wait_ms = 0.0;

        // Online re-planning (PoolConfig::replan).
        std::unique_ptr<SessionReplanner> replanner;
        std::vector<int> plan_cuts; //!< current recommended topology
    };

    void workerLoop();
    /** Blocks for work; false = this worker retired (elastic shrink). */
    bool waitForWork(std::unique_lock<std::mutex> &lk);  //!< under m_
    void spawnWorkerLocked();                //!< under m_
    void notifyResourceShiftLocked();        //!< under m_
    void observeForReplan(Session &s, const LocalizationResult &res);
    void runReleasedBackend(std::unique_lock<std::mutex> &lk, int sid);
    void dispatchSession(std::unique_lock<std::mutex> &lk, int sid);
    bool canDispatchClass(int qi) const;     //!< under m_
    int pickableClass() const;               //!< under m_
    int gangJoinable() const;                //!< under m_
    bool admitLocked(std::unique_lock<std::mutex> &lk, int session_id,
                     FrameInput &&input);    //!< under m_ (may wait)
    int pickSession();                       //!< under m_
    void dropOldestBestEffort();             //!< under m_
    void finishFrame(int sid, PoolResult r); //!< under m_
    void maybeReleaseGang(bool force);       //!< under m_
    Session &sessionAt(int session_id);      //!< under m_ (throws)

    PoolConfig cfg_;
    std::array<size_t, kQosClasses> class_capacity_{};
    SolveHub hub_; //!< shared batching rendezvous (used when enabled)

    mutable std::mutex m_;
    std::condition_variable work_cv_;   //!< workers: runnable session
    std::condition_variable space_cv_;  //!< producers: class quota space
    std::condition_variable result_cv_; //!< consumers: results / drain

    std::vector<std::unique_ptr<Session>> sessions_;
    bool have_safety_ = false; //!< any SAFETY_CRITICAL session registered

    /** Sessions with pending frames, not running, per class. */
    std::array<std::deque<int>, kQosClasses> runnable_;
    std::array<size_t, kQosClasses> class_queued_{};
    int active_non_safety_ = 0; //!< workers executing non-safety frames
    long dispatch_count_ = 0;   //!< weighted-rotation counter

    // Elastic worker scaling (all under m_). live_workers_ is the
    // authoritative pool width: dispatch gates and the gang window size
    // against it, never against cfg_.workers.
    int live_workers_ = 0;
    int min_workers_ = 1;
    int max_workers_ = 1;
    long workers_grown_ = 0;
    long workers_retired_ = 0;
    long admit_seq_ = 0;
    long submitted_ = 0;
    long completed_ = 0;
    long dropped_ = 0;
    int pending_submitters_ = 0; //!< producers inside submit()
    bool stopping_ = false;
    bool shutdown_done_ = false;

    // Gang window state (gang_window only).
    int gang_frontends_ = 0;        //!< frames currently in a frontend
    int gang_outstanding_ = 0;      //!< released backends not yet done
    std::deque<int> gang_staged_;   //!< sessions parked at the window
    std::deque<int> gang_released_; //!< backends released to run
    bool gang_timer_armed_ = false; //!< wave waiting only on frontends
    Clock::time_point gang_wait_since_;

    std::deque<PoolResult> results_;
    std::mutex lifecycle_m_; //!< serializes concurrent shutdown() calls
    std::vector<std::thread> workers_;
};

} // namespace edx
