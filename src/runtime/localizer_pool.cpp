#include "runtime/localizer_pool.hpp"

#include <cassert>

namespace edx {

LocalizerPool::LocalizerPool(const PoolConfig &cfg) : cfg_(cfg)
{
    if (cfg_.workers < 1)
        cfg_.workers = 1;
    if (cfg_.queue_capacity < 1)
        cfg_.queue_capacity = 1;
    if (cfg_.gang_window)
        cfg_.batch_solves = true; // aligning stages without the hub
                                  // would align nothing
    workers_.reserve(cfg_.workers);
    for (int i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back(&LocalizerPool::workerLoop, this);
}

LocalizerPool::~LocalizerPool() { shutdown(); }

int
LocalizerPool::addSession(std::unique_ptr<Localizer> localizer)
{
    assert(localizer);
    std::lock_guard<std::mutex> lk(m_);
    auto s = std::make_unique<Session>();
    s->loc = std::move(localizer);
    if (cfg_.batch_solves)
        s->loc->setSolveHub(&hub_);
    sessions_.push_back(std::move(s));
    return static_cast<int>(sessions_.size()) - 1;
}

int
LocalizerPool::createSession(const LocalizerConfig &cfg,
                             const StereoRig &rig,
                             const Vocabulary *vocabulary,
                             const Map *prior_map, const Pose &start_pose,
                             double t0, const Vec3 &start_velocity)
{
    auto loc = std::make_unique<Localizer>(cfg, rig, vocabulary, prior_map);
    loc->initialize(start_pose, t0, start_velocity);
    return addSession(std::move(loc));
}

bool
LocalizerPool::submit(int session_id, FrameInput input)
{
    std::unique_lock<std::mutex> lk(m_);
    if (session_id < 0 ||
        session_id >= static_cast<int>(sessions_.size()))
        return false;
    space_cv_.wait(lk, [&] {
        return queued_frames_ < cfg_.queue_capacity || stopping_;
    });
    if (stopping_)
        return false;

    Session &s = *sessions_[session_id];
    s.pending.push_back(std::move(input));
    ++queued_frames_;
    ++submitted_;
    // A session joins the run queue only when no worker owns it; the
    // owning worker re-enqueues it on release (actor scheduling keeps
    // per-session frame order).
    if (!s.running && s.pending.size() == 1) {
        runnable_.push_back(session_id);
        work_cv_.notify_one();
    }
    return true;
}

void
LocalizerPool::finishFrame(int sid, PoolResult r)
{
    Session &s = *sessions_[sid];
    s.running = false;
    if (!s.pending.empty()) {
        runnable_.push_back(sid);
        work_cv_.notify_one();
    }
    results_.push_back(std::move(r));
    ++completed_;
    result_cv_.notify_all();
}

void
LocalizerPool::maybeReleaseGang()
{
    // The window closes when no frame is mid-frontend (every in-flight
    // frame is parked at the window, so this is the largest gang the
    // current load can form) and the previous wave's backends are done
    // (waves serialize, keeping each rendezvous at full width; the
    // *next* wave's frontends still overlap this wave's backends).
    // Release at most `workers` backends: more could not execute
    // concurrently anyway, and announced entries must be claimable
    // immediately — see expectBackendEntries().
    if (gang_frontends_ > 0 || gang_outstanding_ > 0 ||
        gang_staged_.empty())
        return;
    int release = std::min(static_cast<int>(gang_staged_.size()),
                           cfg_.workers);
    hub_.expectBackendEntries(release);
    gang_outstanding_ = release;
    for (int i = 0; i < release; ++i) {
        gang_released_.push_back(gang_staged_.front());
        gang_staged_.pop_front();
    }
    work_cv_.notify_all();
}

void
LocalizerPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        work_cv_.wait(lk, [&] {
            return !gang_released_.empty() || !runnable_.empty() ||
                   stopping_;
        });

        // Released gang backends run with strict priority: each was
        // pre-announced to the hub, and the rendezvous holds every
        // parked request until all announced stages are in.
        if (!gang_released_.empty()) {
            int sid = gang_released_.front();
            gang_released_.pop_front();
            Session &s = *sessions_[sid];
            assert(s.running);
            FrameInput input = std::move(s.staged_input);
            FrontendOutput fe = std::move(s.staged_fe);

            lk.unlock();
            PoolResult r;
            r.session_id = sid;
            {
                SolveHub::StageGuard guard(&hub_);
                r.result = s.loc->runBackend(input, fe);
            }
            lk.lock();
            --gang_outstanding_;
            finishFrame(sid, std::move(r));
            maybeReleaseGang();
            continue;
        }

        if (runnable_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        int sid = runnable_.front();
        runnable_.pop_front();
        Session &s = *sessions_[sid];
        assert(!s.running && !s.pending.empty());
        s.running = true;
        FrameInput input = std::move(s.pending.front());
        s.pending.pop_front();
        --queued_frames_;
        space_cv_.notify_one();

        const bool splittable =
            s.loc->initialized() && input.hasImages();

        if (cfg_.gang_window && splittable) {
            // Frontend now; backend parked at the gang window.
            ++gang_frontends_;
            lk.unlock();
            FrontendOutput fe =
                s.loc->runFrontend(input.left, input.right);
            lk.lock();
            --gang_frontends_;
            s.staged_input = std::move(input);
            s.staged_fe = std::move(fe);
            gang_staged_.push_back(sid);
            maybeReleaseGang();
            continue;
        }

        lk.unlock();
        PoolResult r;
        r.session_id = sid;
        if (!splittable) {
            // Rejected frames never reach the backend; keep them out
            // of the gang/batching machinery entirely.
            r.result = s.loc->processFrame(input);
        } else if (cfg_.batch_solves) {
            // The stage guard scopes exactly the backend: a session
            // chewing on its frontend must not stall other sessions'
            // kernel rendezvous.
            FrontendOutput fe =
                s.loc->runFrontend(input.left, input.right);
            SolveHub::StageGuard guard(&hub_);
            r.result = s.loc->runBackend(input, fe);
        } else {
            r.result = s.loc->processFrame(input);
        }
        lk.lock();
        finishFrame(sid, std::move(r));
    }
}

bool
LocalizerPool::poll(PoolResult &out)
{
    std::lock_guard<std::mutex> lk(m_);
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

bool
LocalizerPool::awaitResult(PoolResult &out)
{
    std::unique_lock<std::mutex> lk(m_);
    result_cv_.wait(lk, [&] {
        return !results_.empty() || completed_ == submitted_;
    });
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

void
LocalizerPool::drain()
{
    std::unique_lock<std::mutex> lk(m_);
    result_cv_.wait(lk, [&] { return completed_ == submitted_; });
}

void
LocalizerPool::shutdown()
{
    drain();
    {
        std::lock_guard<std::mutex> lk(m_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
}

int
LocalizerPool::sessionCount() const
{
    std::lock_guard<std::mutex> lk(m_);
    return static_cast<int>(sessions_.size());
}

SolveHubStats
LocalizerPool::solveStats() const
{
    return hub_.stats();
}

Localizer &
LocalizerPool::session(int session_id)
{
    std::lock_guard<std::mutex> lk(m_);
    assert(session_id >= 0 &&
           session_id < static_cast<int>(sessions_.size()));
    return *sessions_[session_id]->loc;
}

} // namespace edx
