#include "runtime/localizer_pool.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace edx {

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

const char *
qosClassName(QosClass q)
{
    switch (q) {
      case QosClass::SafetyCritical:
        return "safety-critical";
      case QosClass::Standard:
        return "standard";
      case QosClass::BestEffort:
        return "best-effort";
    }
    return "?";
}

LocalizerPool::LocalizerPool(const PoolConfig &cfg) : cfg_(cfg)
{
    if (cfg_.workers < 1)
        cfg_.workers = 1;
    if (cfg_.queue_capacity < 1)
        cfg_.queue_capacity = 1;
    if (cfg_.safety_capacity == 0)
        cfg_.safety_capacity = cfg_.queue_capacity;
    if (cfg_.best_effort_capacity == 0)
        cfg_.best_effort_capacity = cfg_.queue_capacity;
    // At least one worker must stay dispatchable for non-safety work,
    // or a pool with any safety-critical session would starve the rest
    // outright instead of degrading them.
    cfg_.reserved_workers =
        std::clamp(cfg_.reserved_workers, 0, cfg_.workers - 1);
    if (cfg_.best_effort_share < 0)
        cfg_.best_effort_share = 0;
    if (cfg_.gang_timeout_ms < 0.0)
        cfg_.gang_timeout_ms = 0.0;
    if (cfg_.gang_window)
        cfg_.batch_solves = true; // aligning stages without the hub
                                  // would align nothing
    class_capacity_ = {cfg_.safety_capacity, cfg_.queue_capacity,
                       cfg_.best_effort_capacity};

    // Elastic bounds: shrink must keep the safety reservation *and* at
    // least one non-reserved slot dispatchable; growth tops out at the
    // machine (or the explicit cap).
    min_workers_ = std::max(1, cfg_.reserved_workers + 1);
    max_workers_ = cfg_.workers;
    if (cfg_.elastic_workers) {
        int hw = static_cast<int>(std::thread::hardware_concurrency());
        if (hw < 1)
            hw = 1;
        max_workers_ = cfg_.max_workers > 0 ? cfg_.max_workers : hw;
        max_workers_ = std::max(max_workers_, cfg_.workers);
        if (cfg_.grow_wait_ms < 0.0)
            cfg_.grow_wait_ms = 0.0;
        if (cfg_.shrink_idle_ms < 1.0)
            cfg_.shrink_idle_ms = 1.0;
    }

    // Under elastic scaling cfg_.workers is only the starting point;
    // clamp it into [min, max] so a pool configured with a reservation
    // starts wide enough to dispatch both classes at all.
    int initial = cfg_.workers;
    if (cfg_.elastic_workers)
        initial = std::min(std::max(initial, min_workers_), max_workers_);

    std::lock_guard<std::mutex> lk(m_);
    for (int i = 0; i < initial; ++i) {
        workers_.emplace_back(&LocalizerPool::workerLoop, this);
        ++live_workers_;
    }
}

void
LocalizerPool::spawnWorkerLocked()
{
    workers_.emplace_back(&LocalizerPool::workerLoop, this);
    ++live_workers_;
    ++workers_grown_;
    notifyResourceShiftLocked();
}

void
LocalizerPool::notifyResourceShiftLocked()
{
    // A live_workers_ transition changed the machine's effective width;
    // every replanning session should re-fit on its next completed
    // frame instead of drifting through a stale cadence window.
    for (auto &s : sessions_)
        if (s->replanner)
            s->replanner->notifyResourceShift();
}

LocalizerPool::~LocalizerPool() { shutdown(); }

LocalizerPool::Session &
LocalizerPool::sessionAt(int session_id)
{
    if (session_id < 0 ||
        session_id >= static_cast<int>(sessions_.size()))
        throw std::out_of_range(
            "LocalizerPool: unknown session id " +
            std::to_string(session_id) + " (have " +
            std::to_string(sessions_.size()) + ")");
    return *sessions_[session_id];
}

int
LocalizerPool::addSession(std::unique_ptr<Localizer> localizer,
                          const SessionConfig &session)
{
    assert(localizer);
    std::lock_guard<std::mutex> lk(m_);
    auto s = std::make_unique<Session>();
    s->loc = std::move(localizer);
    s->cfg = session;
    s->stats.qos = session.qos;
    if (cfg_.batch_solves)
        s->loc->setSolveHub(&hub_);
    if (cfg_.map_service && session.share_map)
        s->loc->attachMapService(cfg_.map_service);
    if (cfg_.replan) {
        s->replanner = std::make_unique<SessionReplanner>(cfg_.replan_cfg);
        // Seed with the classic frontend|backend split — the topology
        // every session would run statically.
        s->plan_cuts = {static_cast<int>(PipeNode::Tm)};
    }
    if (session.qos == QosClass::SafetyCritical)
        have_safety_ = true;
    sessions_.push_back(std::move(s));
    return static_cast<int>(sessions_.size()) - 1;
}

int
LocalizerPool::createSession(const LocalizerConfig &cfg,
                             const StereoRig &rig,
                             const Vocabulary *vocabulary,
                             const Map *prior_map, const Pose &start_pose,
                             double t0, const Vec3 &start_velocity,
                             const SessionConfig &session)
{
    auto loc = std::make_unique<Localizer>(cfg, rig, vocabulary, prior_map);
    loc->initialize(start_pose, t0, start_velocity);
    return addSession(std::move(loc), session);
}

void
LocalizerPool::dropOldestBestEffort()
{
    // The class-oldest pending frame is the front of whichever
    // best-effort session queue holds the smallest admission sequence
    // (per-session queues are FIFO in admission order).
    int victim = -1;
    long oldest = 0;
    for (int sid = 0; sid < static_cast<int>(sessions_.size()); ++sid) {
        Session &s = *sessions_[sid];
        if (s.cfg.qos != QosClass::BestEffort || s.pending.empty())
            continue;
        if (victim < 0 || s.pending.front().admit_seq < oldest) {
            victim = sid;
            oldest = s.pending.front().admit_seq;
        }
    }
    assert(victim >= 0 && "best-effort quota full but no pending frame");
    if (victim < 0)
        return;
    Session &s = *sessions_[victim];
    s.pending.pop_front();
    ++s.stats.dropped_oldest;
    ++dropped_;
    const int qi = static_cast<int>(QosClass::BestEffort);
    --class_queued_[qi];
    if (s.pending.empty() && !s.running) {
        auto &rq = runnable_[qi];
        auto it = std::find(rq.begin(), rq.end(), victim);
        if (it != rq.end())
            rq.erase(it);
    }
    // No consumer wake-up here: the drop only ever happens mid-submit,
    // and the caller admits its own frame within this same critical
    // section, re-unbalancing the drain predicate before any waiter
    // could observe the intermediate state.
}

bool
LocalizerPool::admitLocked(std::unique_lock<std::mutex> &lk,
                           int session_id, FrameInput &&input)
{
    Session &s = sessionAt(session_id); // throws on bad id
    const QosClass q = s.cfg.qos;
    const int qi = static_cast<int>(q);

    bool admitted = false;
    if (q == QosClass::BestEffort) {
        // Never blocks: shed the class-oldest frame at quota.
        if (!stopping_) {
            if (class_queued_[qi] >= class_capacity_[qi])
                dropOldestBestEffort();
            admitted = true;
        }
    } else {
        space_cv_.wait(lk, [&] {
            return class_queued_[qi] < class_capacity_[qi] || stopping_;
        });
        admitted = !stopping_;
    }

    if (admitted) {
        PendingFrame pf;
        pf.input = std::move(input);
        pf.admit_seq = ++admit_seq_;
        pf.admit_time = Clock::now();
        s.pending.push_back(std::move(pf));
        ++class_queued_[qi];
        ++submitted_;
        ++s.stats.submitted;
        // A session joins the run queue only when no worker owns it;
        // the owning worker re-enqueues it on release (actor scheduling
        // keeps per-session frame order).
        if (!s.running && s.pending.size() == 1) {
            runnable_[qi].push_back(session_id);
            work_cv_.notify_one();
        }
    }
    return admitted;
}

bool
LocalizerPool::submit(int session_id, FrameInput input)
{
    std::unique_lock<std::mutex> lk(m_);
    // In-flight submitters are visible to drain()/shutdown(): a
    // producer parked on the quota inside admitLocked() holds
    // `pending_submitters_` up, so a concurrent drain waits for its
    // frame instead of letting a racing shutdown drop it silently
    // after the wake-up.
    ++pending_submitters_;
    bool admitted = false;
    try {
        admitted = admitLocked(lk, session_id, std::move(input));
    } catch (...) {
        --pending_submitters_;
        throw;
    }
    --pending_submitters_;
    // drain()/awaitResult() watch pending_submitters_, but an
    // admission just unbalanced their counters anyway — only wake them
    // when this submitter's exit could actually complete a drain.
    if (pending_submitters_ == 0 && completed_ + dropped_ == submitted_)
        result_cv_.notify_all();
    return admitted;
}

int
LocalizerPool::submitBatch(std::vector<std::pair<int, FrameInput>> frames)
{
    std::unique_lock<std::mutex> lk(m_);
    // Validate ids before admitting anything: a bad id mid-batch must
    // not leave a half-admitted batch behind the thrown exception.
    for (const auto &f : frames)
        sessionAt(f.first);
    ++pending_submitters_;
    int admitted = 0;
    for (auto &f : frames)
        if (admitLocked(lk, f.first, std::move(f.second)))
            ++admitted;
    --pending_submitters_;
    if (pending_submitters_ == 0 && completed_ + dropped_ == submitted_)
        result_cv_.notify_all();
    return admitted;
}

bool
LocalizerPool::canDispatchClass(int qi) const
{
    if (runnable_[qi].empty())
        return false;
    if (qi == static_cast<int>(QosClass::SafetyCritical) || stopping_)
        return true;
    if (!have_safety_ || cfg_.reserved_workers == 0)
        return true;
    // Reserved capacity: non-safety frames only dispatch while they
    // occupy fewer than live - reserved_workers slots (live, not the
    // configured count — elastic scaling moves the pool width).
    return active_non_safety_ < live_workers_ - cfg_.reserved_workers;
}

int
LocalizerPool::pickableClass() const
{
    for (int qi = 0; qi < kQosClasses; ++qi)
        if (canDispatchClass(qi))
            return qi;
    return -1;
}

int
LocalizerPool::pickSession()
{
    // Priority order, with a 1-in-N rotation that offers best-effort
    // the first look *over standard* so sustained standard backlog
    // cannot starve best-effort sessions entirely. Safety-critical
    // work is never preempted by the rotation — under overload the
    // pool degrades selectively, and the selectivity is the point:
    // best-effort catches up whenever the safety-critical queue is
    // momentarily empty (every paced sensor stream has such gaps).
    std::array<int, kQosClasses> order = {0, 1, 2};
    if (cfg_.best_effort_share > 0 &&
        dispatch_count_ % cfg_.best_effort_share ==
            cfg_.best_effort_share - 1)
        order = {0, 2, 1};
    for (int qi : order) {
        if (!canDispatchClass(qi))
            continue;
        ++dispatch_count_;
        const int sid = runnable_[qi].front();
        runnable_[qi].pop_front();
        return sid;
    }
    return -1;
}

void
LocalizerPool::observeForReplan(Session &s, const LocalizationResult &res)
{
    // The pool-side replan tick (PoolConfig::replan): completed-frame
    // telemetry streams into the session's windowed profile; a plan
    // that clears the hysteresis margin becomes the session's new
    // recommended topology. Runs under m_ — a tick is a handful of
    // closed-form fits over a small window, far below one frame's cost.
    if (!s.replanner || !res.ok)
        return;
    if (auto plan =
            s.replanner->observe(res.telemetry, res.mode, s.plan_cuts))
        s.plan_cuts = plan->cuts;
}

void
LocalizerPool::finishFrame(int sid, PoolResult r)
{
    Session &s = *sessions_[sid];
    s.running = false;
    ++s.stats.completed;
    observeForReplan(s, r.result);
    s.stats.health = r.result.telemetry.health;
    ++s.stats.health_frames[static_cast<int>(r.result.telemetry.health)];
    if (r.result.telemetry.dead_reckoned)
        ++s.stats.dead_reckoned_frames;
    if (!s.pending.empty()) {
        runnable_[static_cast<int>(s.cfg.qos)].push_back(sid);
        work_cv_.notify_one();
    }
    results_.push_back(std::move(r));
    ++completed_;
    result_cv_.notify_all();
}

int
LocalizerPool::gangJoinable() const
{
    // Frames that could still widen a forming wave: splittable heads
    // of runnable sessions in a currently-dispatchable class. Slot-
    // blocked classes are excluded — the wave must not wait on a frame
    // the QoS gate will not let a worker pick up.
    int n = 0;
    for (int qi = 0; qi < kQosClasses; ++qi) {
        if (!canDispatchClass(qi))
            continue;
        for (int sid : runnable_[qi]) {
            const Session &s = *sessions_[sid];
            if (!s.pending.empty() && s.loc->initialized() &&
                s.pending.front().input.hasImages())
                ++n;
        }
    }
    return n;
}

void
LocalizerPool::maybeReleaseGang(bool force)
{
    // The window closes when no frame is mid-frontend (every in-flight
    // frame is parked at the window, so this is the largest gang the
    // current load can form) and the previous wave's backends are done
    // (waves serialize, keeping each rendezvous at full width; the
    // *next* wave's frontends still overlap this wave's backends).
    // Release at most `workers` backends: more could not execute
    // concurrently anyway, and announced entries must be claimable
    // immediately — see expectBackendEntries().
    if (gang_outstanding_ > 0 || gang_staged_.empty())
        return;
    if (!force &&
        (gang_frontends_ > 0 ||
         (static_cast<int>(gang_staged_.size()) < live_workers_ &&
          gangJoinable() > 0))) {
        // The wave is blocked on in-flight frontends, or on runnable
        // frames a freed worker has not picked up yet (the window
        // would otherwise race the workers' dispatch loop and release
        // narrow waves). Arm the wave timer so a lagging (e.g.
        // best-effort) frontend cannot hold parked backends hostage:
        // an idle worker forces a narrower release at the deadline
        // (waitForWork()).
        if (cfg_.gang_timeout_ms > 0.0 && !gang_timer_armed_) {
            gang_timer_armed_ = true;
            gang_wait_since_ = Clock::now();
            work_cv_.notify_all(); // sleepers switch to a timed wait
        }
        return;
    }
    gang_timer_armed_ = false;
    const int release = std::min(static_cast<int>(gang_staged_.size()),
                                 live_workers_);
    // Pre-announce per priority class: the hub's safety-led rendezvous
    // must know how many *safety-critical* stages are inbound, or a
    // safety backend could batch early at partial width (or wait on a
    // best-effort wave member that a reserved slot gate delays).
    int safety = 0;
    for (int i = 0; i < release; ++i)
        if (sessions_[gang_staged_[i]]->cfg.qos ==
            QosClass::SafetyCritical)
            ++safety;
    if (release - safety > 0)
        hub_.expectBackendEntries(release - safety, /*safety=*/false);
    if (safety > 0)
        hub_.expectBackendEntries(safety, /*safety=*/true);
    gang_outstanding_ = release;
    for (int i = 0; i < release; ++i) {
        gang_released_.push_back(gang_staged_.front());
        gang_staged_.pop_front();
    }
    work_cv_.notify_all();
}

bool
LocalizerPool::waitForWork(std::unique_lock<std::mutex> &lk)
{
    auto ready = [&] {
        return !gang_released_.empty() || stopping_ ||
               pickableClass() >= 0;
    };
    const auto timeout = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(cfg_.gang_timeout_ms));
    const auto idle_limit = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(cfg_.shrink_idle_ms));
    const auto idle_since = Clock::now();
    // An expired wave must be forced even by a worker that never goes
    // idle: on a busy pool the workers pass through here between
    // frames while the timed wait below is never entered, and a
    // released backend outranks any fresh dispatch — so this is
    // exactly the moment a freed worker should pick up the overdue
    // wave instead of new work.
    if (gang_timer_armed_ && cfg_.gang_timeout_ms > 0.0 &&
        Clock::now() >= gang_wait_since_ + timeout)
        maybeReleaseGang(/*force=*/true);
    while (!ready()) {
        const bool gang_deadline =
            gang_timer_armed_ && cfg_.gang_timeout_ms > 0.0;
        // Elastic shrink: a worker with nothing to do for
        // shrink_idle_ms retires — unless the pool is already at its
        // floor. The floor keeps the safety reservation *and* one
        // non-reserved slot alive.
        const bool shrinkable =
            cfg_.elastic_workers && live_workers_ > min_workers_;
        if (gang_deadline || shrinkable) {
            auto deadline = idle_since + idle_limit;
            if (gang_deadline) {
                const auto gd = gang_wait_since_ + timeout;
                deadline = shrinkable ? std::min(deadline, gd) : gd;
            }
            if (!work_cv_.wait_until(lk, deadline, ready)) {
                if (gang_timer_armed_ && cfg_.gang_timeout_ms > 0.0 &&
                    Clock::now() >= gang_wait_since_ + timeout)
                    // Wave timed out waiting on lagging frontends:
                    // force the narrower pre-announced release. The
                    // re-check against the *current* gang_wait_since_
                    // matters: the timer may have been re-armed for a
                    // newer wave while this worker slept on an older
                    // wave's deadline, and that newer wave deserves
                    // its full window.
                    maybeReleaseGang(/*force=*/true);
                if (!ready() && cfg_.elastic_workers &&
                    live_workers_ > min_workers_ &&
                    Clock::now() >= idle_since + idle_limit) {
                    --live_workers_;
                    ++workers_retired_;
                    notifyResourceShiftLocked();
                    return false;
                }
            }
        } else {
            work_cv_.wait(lk, [&] {
                return ready() || gang_timer_armed_ ||
                       (cfg_.elastic_workers &&
                        live_workers_ > min_workers_);
            });
        }
    }
    return true;
}

void
LocalizerPool::runReleasedBackend(std::unique_lock<std::mutex> &lk,
                                  int sid)
{
    Session &s = *sessions_[sid];
    assert(s.running);
    const bool non_safety = s.cfg.qos != QosClass::SafetyCritical;
    if (non_safety)
        ++active_non_safety_;
    FrameInput input = std::move(s.staged_input);
    FrontendOutput fe = std::move(s.staged_fe);
    const double wait_ms = s.staged_wait_ms;

    lk.unlock();
    PoolResult r;
    r.session_id = sid;
    r.qos = s.cfg.qos;
    {
        SolveHub::StageGuard guard(&hub_, !non_safety);
        r.result = s.loc->runBackend(input, fe);
    }
    lk.lock();
    if (non_safety)
        --active_non_safety_;
    --gang_outstanding_;
    r.result.telemetry.queue_wait_ms = wait_ms;
    finishFrame(sid, std::move(r));
    maybeReleaseGang(/*force=*/false);
}

void
LocalizerPool::dispatchSession(std::unique_lock<std::mutex> &lk, int sid)
{
    Session &s = *sessions_[sid];
    assert(!s.running && !s.pending.empty());
    const QosClass q = s.cfg.qos;
    const int qi = static_cast<int>(q);
    PendingFrame pf = std::move(s.pending.front());
    s.pending.pop_front();
    --class_queued_[qi];
    space_cv_.notify_all();

    const double wait_ms = msSince(pf.admit_time);
    if (q == QosClass::BestEffort && s.cfg.frame_deadline_ms > 0.0 &&
        wait_ms > s.cfg.frame_deadline_ms) {
        // Frame-deadline drop: a best-effort frame that aged past its
        // deadline in the queue is stale for a live robot — shed it
        // instead of spending a worker on it.
        ++s.stats.dropped_deadline;
        ++dropped_;
        if (!s.pending.empty()) {
            runnable_[qi].push_back(sid);
            work_cv_.notify_one();
        }
        result_cv_.notify_all();
        // A frame the window may have been waiting on just evaporated;
        // re-evaluate so a parked wave is not stranded.
        if (cfg_.gang_window)
            maybeReleaseGang(/*force=*/false);
        return;
    }

    s.running = true;
    s.stats.queue_wait_total_ms += wait_ms;
    s.stats.queue_wait_max_ms =
        std::max(s.stats.queue_wait_max_ms, wait_ms);
    // Elastic growth, driven by the queue-wait telemetry itself: a
    // frame that aged in its queue means every worker was busy while
    // runnable work waited — more parallelism would have served it
    // sooner.
    if (cfg_.elastic_workers && live_workers_ < max_workers_ &&
        wait_ms > cfg_.grow_wait_ms)
        spawnWorkerLocked();
    const bool non_safety = q != QosClass::SafetyCritical;
    if (non_safety)
        ++active_non_safety_;

    FrameInput input = std::move(pf.input);
    const bool splittable = s.loc->initialized() && input.hasImages();

    if (cfg_.gang_window && splittable) {
        // Frontend now; backend parked at the gang window.
        ++gang_frontends_;
        lk.unlock();
        FrontendOutput fe = s.loc->runFrontend(input.left, input.right);
        lk.lock();
        --gang_frontends_;
        if (non_safety)
            --active_non_safety_;
        s.staged_input = std::move(input);
        s.staged_fe = std::move(fe);
        s.staged_wait_ms = wait_ms;
        gang_staged_.push_back(sid);
        maybeReleaseGang(/*force=*/false);
        return;
    }

    lk.unlock();
    PoolResult r;
    r.session_id = sid;
    r.qos = q;
    if (!splittable) {
        // Rejected frames never reach the backend; keep them out
        // of the gang/batching machinery entirely.
        r.result = s.loc->processFrame(input);
    } else if (cfg_.batch_solves) {
        // The stage guard scopes exactly the backend: a session
        // chewing on its frontend must not stall other sessions'
        // kernel rendezvous.
        FrontendOutput fe = s.loc->runFrontend(input.left, input.right);
        SolveHub::StageGuard guard(&hub_, !non_safety);
        r.result = s.loc->runBackend(input, fe);
    } else {
        r.result = s.loc->processFrame(input);
    }
    lk.lock();
    if (non_safety)
        --active_non_safety_;
    r.result.telemetry.queue_wait_ms = wait_ms;
    finishFrame(sid, std::move(r));
    // This frame bypassed the window (not splittable); if a parked
    // wave was waiting on it as joinable, re-evaluate.
    if (cfg_.gang_window)
        maybeReleaseGang(/*force=*/false);
}

void
LocalizerPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        if (!waitForWork(lk))
            return; // retired by elastic shrink

        // Released gang backends run with strict priority: each was
        // pre-announced to the hub, and the rendezvous holds every
        // parked request until all announced stages are in. (Reserved
        // worker slots gate *dispatch*, not announced backends — an
        // announced entry that never arrives would stall the hub.)
        if (!gang_released_.empty()) {
            const int sid = gang_released_.front();
            gang_released_.pop_front();
            runReleasedBackend(lk, sid);
            continue;
        }

        const int sid = pickSession();
        if (sid < 0) {
            if (stopping_)
                return;
            continue;
        }
        dispatchSession(lk, sid);
    }
}

bool
LocalizerPool::poll(PoolResult &out)
{
    std::lock_guard<std::mutex> lk(m_);
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

bool
LocalizerPool::awaitResult(PoolResult &out)
{
    std::unique_lock<std::mutex> lk(m_);
    // Shutdown-aware: `completed_ + dropped_ == submitted_` holds
    // transiently whenever the pool is momentarily idle between two
    // producer submissions, so it alone must never end a consumer
    // loop — only a draining shutdown may.
    result_cv_.wait(lk, [&] {
        return !results_.empty() ||
               (stopping_ && pending_submitters_ == 0 &&
                completed_ + dropped_ == submitted_);
    });
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

void
LocalizerPool::drain()
{
    std::unique_lock<std::mutex> lk(m_);
    result_cv_.wait(lk, [&] {
        return pending_submitters_ == 0 &&
               completed_ + dropped_ == submitted_;
    });
}

void
LocalizerPool::shutdown()
{
    // Serialized: a second concurrent caller (e.g. the destructor
    // racing an explicit shutdown) blocks here until the first one has
    // joined the workers, instead of returning while they still run.
    std::lock_guard<std::mutex> lifecycle(lifecycle_m_);
    {
        std::lock_guard<std::mutex> lk(m_);
        if (shutdown_done_)
            return;
    }
    drain();
    {
        std::lock_guard<std::mutex> lk(m_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
    result_cv_.notify_all();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    std::lock_guard<std::mutex> lk(m_);
    shutdown_done_ = true;
}

int
LocalizerPool::sessionCount() const
{
    std::lock_guard<std::mutex> lk(m_);
    return static_cast<int>(sessions_.size());
}

SolveHubStats
LocalizerPool::solveStats() const
{
    return hub_.stats();
}

PoolStats
LocalizerPool::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    PoolStats out;
    out.sessions.reserve(sessions_.size());
    for (const auto &s : sessions_) {
        SessionPoolStats ss = s->stats;
        if (s->replanner) {
            ss.plan_cuts = s->plan_cuts;
            ss.replan = s->replanner->stats();
            out.replans += ss.replan.ticks;
            out.swaps_applied += ss.replan.proposals;
            out.swaps_rejected += ss.replan.held;
        }
        if (s->loc->mapService()) {
            // Atomic counters published by the session's own worker;
            // safe to read while the session is in flight.
            ss.map_contributions = s->loc->mapContributions();
            ss.map_epoch = s->loc->mapEpoch();
            ss.epoch_acquire_max_ms = s->loc->maxEpochAcquireMs();
        }
        out.sessions.push_back(std::move(ss));
    }
    if (cfg_.map_service) {
        out.map_service_attached = true;
        out.map_service = cfg_.map_service->stats();
    }
    out.submitted = submitted_;
    out.completed = completed_;
    out.dropped = dropped_;
    out.workers = live_workers_;
    out.workers_grown = workers_grown_;
    out.workers_retired = workers_retired_;
    return out;
}

Localizer &
LocalizerPool::session(int session_id)
{
    std::lock_guard<std::mutex> lk(m_);
    return *sessionAt(session_id).loc;
}

} // namespace edx
