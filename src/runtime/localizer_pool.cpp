#include "runtime/localizer_pool.hpp"

#include <cassert>

namespace edx {

LocalizerPool::LocalizerPool(const PoolConfig &cfg) : cfg_(cfg)
{
    if (cfg_.workers < 1)
        cfg_.workers = 1;
    if (cfg_.queue_capacity < 1)
        cfg_.queue_capacity = 1;
    workers_.reserve(cfg_.workers);
    for (int i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back(&LocalizerPool::workerLoop, this);
}

LocalizerPool::~LocalizerPool() { shutdown(); }

int
LocalizerPool::addSession(std::unique_ptr<Localizer> localizer)
{
    assert(localizer);
    std::lock_guard<std::mutex> lk(m_);
    auto s = std::make_unique<Session>();
    s->loc = std::move(localizer);
    if (cfg_.batch_solves)
        s->loc->setSolveHub(&hub_);
    sessions_.push_back(std::move(s));
    return static_cast<int>(sessions_.size()) - 1;
}

int
LocalizerPool::createSession(const LocalizerConfig &cfg,
                             const StereoRig &rig,
                             const Vocabulary *vocabulary,
                             const Map *prior_map, const Pose &start_pose,
                             double t0, const Vec3 &start_velocity)
{
    auto loc = std::make_unique<Localizer>(cfg, rig, vocabulary, prior_map);
    loc->initialize(start_pose, t0, start_velocity);
    return addSession(std::move(loc));
}

bool
LocalizerPool::submit(int session_id, FrameInput input)
{
    std::unique_lock<std::mutex> lk(m_);
    if (session_id < 0 ||
        session_id >= static_cast<int>(sessions_.size()))
        return false;
    space_cv_.wait(lk, [&] {
        return queued_frames_ < cfg_.queue_capacity || stopping_;
    });
    if (stopping_)
        return false;

    Session &s = *sessions_[session_id];
    s.pending.push_back(std::move(input));
    ++queued_frames_;
    ++submitted_;
    // A session joins the run queue only when no worker owns it; the
    // owning worker re-enqueues it on release (actor scheduling keeps
    // per-session frame order).
    if (!s.running && s.pending.size() == 1) {
        runnable_.push_back(session_id);
        work_cv_.notify_one();
    }
    return true;
}

void
LocalizerPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        work_cv_.wait(lk, [&] { return !runnable_.empty() || stopping_; });
        if (runnable_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        int sid = runnable_.front();
        runnable_.pop_front();
        Session &s = *sessions_[sid];
        assert(!s.running && !s.pending.empty());
        s.running = true;
        FrameInput input = std::move(s.pending.front());
        s.pending.pop_front();
        --queued_frames_;
        space_cv_.notify_one();

        lk.unlock();
        PoolResult r;
        r.session_id = sid;
        r.result = s.loc->processFrame(input);
        lk.lock();

        s.running = false;
        if (!s.pending.empty()) {
            runnable_.push_back(sid);
            work_cv_.notify_one();
        }
        results_.push_back(std::move(r));
        ++completed_;
        result_cv_.notify_all();
    }
}

bool
LocalizerPool::poll(PoolResult &out)
{
    std::lock_guard<std::mutex> lk(m_);
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

bool
LocalizerPool::awaitResult(PoolResult &out)
{
    std::unique_lock<std::mutex> lk(m_);
    result_cv_.wait(lk, [&] {
        return !results_.empty() || completed_ == submitted_;
    });
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

void
LocalizerPool::drain()
{
    std::unique_lock<std::mutex> lk(m_);
    result_cv_.wait(lk, [&] { return completed_ == submitted_; });
}

void
LocalizerPool::shutdown()
{
    drain();
    {
        std::lock_guard<std::mutex> lk(m_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
}

int
LocalizerPool::sessionCount() const
{
    std::lock_guard<std::mutex> lk(m_);
    return static_cast<int>(sessions_.size());
}

SolveHubStats
LocalizerPool::solveStats() const
{
    return hub_.stats();
}

Localizer &
LocalizerPool::session(int session_id)
{
    std::lock_guard<std::mutex> lk(m_);
    assert(session_id >= 0 &&
           session_id < static_cast<int>(sessions_.size()));
    return *sessions_[session_id]->loc;
}

} // namespace edx
