/**
 * @file
 * Bounded blocking FIFO queue — the backpressure primitive between the
 * runtime's pipeline stages.
 *
 * A full queue blocks the producer (push) until the consumer catches
 * up, so a slow backend stage throttles frame ingestion instead of
 * letting frames pile up without bound — the standard behaviour of a
 * real-time localization pipeline that must shed latency, not memory.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace edx {

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : cap_(capacity ? capacity : 1)
    {}

    /**
     * Enqueues @p v, blocking while the queue is full.
     * @return false when the queue was closed (item dropped).
     */
    bool
    push(T v)
    {
        std::unique_lock<std::mutex> lk(m_);
        not_full_.wait(lk, [&] { return q_.size() < cap_ || closed_; });
        if (closed_)
            return false;
        q_.push_back(std::move(v));
        high_water_ = std::max(high_water_, q_.size());
        not_empty_.notify_one();
        return true;
    }

    /**
     * Like push(), but when the queue was closed @p v is left intact
     * (moved only on success) so the caller can re-route the item —
     * the epoch-retirement retry of FramePipeline::submit() resubmits
     * a frame whose target topology was swapped out from under it.
     */
    bool
    pushOrKeep(T &v)
    {
        std::unique_lock<std::mutex> lk(m_);
        not_full_.wait(lk, [&] { return q_.size() < cap_ || closed_; });
        if (closed_)
            return false;
        q_.push_back(std::move(v));
        high_water_ = std::max(high_water_, q_.size());
        not_empty_.notify_one();
        return true;
    }

    /**
     * Dequeues the oldest item, blocking while the queue is empty.
     * @return nullopt when the queue is closed and fully drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lk(m_);
        not_empty_.wait(lk, [&] { return !q_.empty() || closed_; });
        if (q_.empty())
            return std::nullopt;
        T v = std::move(q_.front());
        q_.pop_front();
        not_full_.notify_one();
        return v;
    }

    /** Closes the queue: producers fail, consumers drain then stop. */
    void
    close()
    {
        std::lock_guard<std::mutex> lk(m_);
        closed_ = true;
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return q_.size();
    }

    size_t capacity() const { return cap_; }

    /** Largest depth ever observed (contention diagnostic). */
    size_t
    highWater() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return high_water_;
    }

  private:
    mutable std::mutex m_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> q_;
    size_t cap_;
    size_t high_water_ = 0;
    bool closed_ = false;
};

} // namespace edx
