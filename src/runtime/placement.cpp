#include "runtime/placement.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "hw/backend_accel.hpp"
#include "hw/frontend_accel.hpp"
#include "math/stats.hpp"

namespace edx {

namespace {

/**
 * Floor for fitted sub-stage predictions, ms. Degenerate telemetry —
 * a sub-stage whose timings were never recorded, or a fit that
 * collapses to zero — must never present a sub-stage as *free*: a
 * zero-cost node makes every cut around it look harmless (degenerate
 * topologies burning stage workers on nothing) and zeroes the
 * predicted period, poisoning the fps/speedup ratios every consumer
 * derives from it. 1 µs is far below any real sub-stage, so genuine
 * profiles are unaffected.
 */
constexpr double kMinNodePredMs = 1e-3;

/**
 * Smallest per-stage gain worth an extra stage worker, ms. Cutting the
 * chain costs a thread and a queue handoff; a topology that only
 * shaves tens of microseconds off the bottleneck (the scale of the
 * epsilon-floored stages of a degenerate profile) must lose the
 * near-tie to the plan with fewer stages.
 */
constexpr double kMinStageGainMs = 0.05;

/**
 * Predicts a sub-stage's latency at the profile's mean driver size by
 * fitting latency against the driver (the scheduler's regression
 * recipe, Sec. VI-B). Degenerate profiles — near-constant drivers or
 * too few samples — fall back to the plain mean; every prediction is
 * floored at kMinNodePredMs.
 */
double
fitPredictMs(const std::vector<double> &xs, const std::vector<double> &ys,
             int degree)
{
    if (ys.empty())
        return kMinNodePredMs;
    double mean_x = 0.0, mean_y = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        mean_x += xs[i];
        mean_y += ys[i];
    }
    mean_x /= static_cast<double>(xs.size());
    mean_y /= static_cast<double>(ys.size());

    double var_x = 0.0;
    for (double x : xs)
        var_x += (x - mean_x) * (x - mean_x);
    var_x /= static_cast<double>(xs.size());

    const int need = degree + 2;
    if (static_cast<int>(xs.size()) < need ||
        std::sqrt(var_x) < 1e-9 * std::max(1.0, std::abs(mean_x)))
        return std::max(kMinNodePredMs, mean_y);

    PolynomialModel model = PolynomialModel::fit(xs, ys, degree);
    double pred = model.predict(mean_x);
    if (!std::isfinite(pred) || pred < 0.0)
        return std::max(kMinNodePredMs, mean_y);
    return std::max(kMinNodePredMs, pred);
}

} // namespace

double
pipeNodeMs(const FrameTelemetry &t, BackendMode mode, int node)
{
    switch (static_cast<PipeNode>(node)) {
      case PipeNode::Fe:
        return t.frontend.feBlock();
      case PipeNode::Sm:
        return t.frontend.smBlock();
      case PipeNode::Tm:
        return t.frontend.tmBlock();
      case PipeNode::Solve:
        switch (mode) {
          case BackendMode::Registration:
            return t.tracking.total();
          case BackendMode::Vio:
            return t.msckf.total();
          case BackendMode::Slam:
            return t.tracking.total() + t.mapping.solver_ms +
                   t.mapping.others_ms;
        }
        return 0.0;
      case PipeNode::Finish:
        switch (mode) {
          case BackendMode::Registration:
            return 0.0;
          case BackendMode::Vio:
            return t.fusion_ms;
          case BackendMode::Slam:
            return t.mapping.marginalization_ms + t.mapping.loop_ms;
        }
        return 0.0;
    }
    return 0.0;
}

NodeProfile
PlacementPlanner::profileFromTelemetry(
    const std::vector<FrameTelemetry> &frames, BackendMode mode)
{
    NodeProfile p;
    if (frames.empty())
        return p;

    const int n = static_cast<int>(frames.size());
    std::array<std::vector<double>, kPipelineNodes> xs, ys;
    for (auto &v : xs)
        v.reserve(n);
    for (auto &v : ys)
        v.reserve(n);

    const BackendKernel kernel = kernelForMode(mode);
    for (const FrameTelemetry &t : frames) {
        const FrontendWorkload &w = t.frontend_workload;
        xs[0].push_back(static_cast<double>(w.image_pixels));
        ys[0].push_back(t.frontend.feBlock());
        xs[1].push_back(static_cast<double>(w.stereo_candidates));
        ys[1].push_back(t.frontend.smBlock());
        xs[2].push_back(static_cast<double>(w.temporal_tracks));
        ys[2].push_back(t.frontend.tmBlock());
        xs[3].push_back(stageSizeDriver(kernel, w));
        ys[3].push_back(pipeNodeMs(t, mode, 3));
        // The finish sub-stage scales with the landmarks entering the
        // marginalization window — driven by the stereo matches, like
        // the SLAM scheduler driver.
        xs[4].push_back(
            stageSizeDriver(BackendKernel::Marginalization, w));
        ys[4].push_back(pipeNodeMs(t, mode, 4));
    }

    // FE/SM/TM are linear in their drivers (pixel / candidate / track
    // streams); the backend sub-stages use the scheduler's per-kernel
    // degree (linear projection, quadratic Kalman gain and
    // marginalization, Sec. VI-B).
    p.node_ms[0] = fitPredictMs(xs[0], ys[0], 1);
    p.node_ms[1] = fitPredictMs(xs[1], ys[1], 1);
    p.node_ms[2] = fitPredictMs(xs[2], ys[2], 1);
    p.node_ms[3] = fitPredictMs(xs[3], ys[3], kernelModelDegree(kernel));
    p.node_ms[4] = fitPredictMs(
        xs[4], ys[4],
        kernelModelDegree(BackendKernel::Marginalization));
    return p;
}

NodeProfile
PlacementPlanner::profileAccelerated(
    const std::vector<FrameTelemetry> &frames, BackendMode mode,
    const AcceleratorConfig &acfg)
{
    NodeProfile p;
    if (frames.empty())
        return p;

    FrontendAccelerator fe_accel(acfg);
    BackendAccelerator be_accel(acfg);

    double fe = 0.0, sm = 0.0, tm = 0.0, solve = 0.0, finish = 0.0;
    for (const FrameTelemetry &t : frames) {
        FrontendAccelTiming ft = fe_accel.model(t.frontend_workload);
        fe += ft.feBlock();
        sm += ft.smBlock();
        tm += ft.tm_ms;

        // Backend: software blocks with the variation-dominating kernel
        // swapped for its accelerator cost (compute + DMA), exactly the
        // substitution the offload benches make.
        double sv = pipeNodeMs(t, mode, 3);
        double fn = pipeNodeMs(t, mode, 4);
        switch (mode) {
          case BackendMode::Registration:
            sv += be_accel
                      .projection(t.tracking_workload.map_points_projected)
                      .totalMs() -
                  t.tracking.projection_ms;
            break;
          case BackendMode::Vio:
            sv += be_accel
                      .kalmanGain(t.msckf_workload.stacked_rows,
                                  t.msckf_workload.state_dim)
                      .totalMs() -
                  t.msckf.kalman_gain_ms;
            break;
          case BackendMode::Slam:
            fn += be_accel
                      .marginalization(
                          t.mapping_workload.marginalized_landmarks)
                      .totalMs() -
                  t.mapping.marginalization_ms;
            break;
        }
        solve += std::max(0.0, sv);
        finish += std::max(0.0, fn);
    }
    const double n = static_cast<double>(frames.size());
    p.node_ms = {fe / n, sm / n, tm / n, solve / n, finish / n};
    // Same floor as the telemetry fits: the accelerator substitution
    // can price a sub-stage at exactly zero (e.g. a registration
    // finish node), and the planner must never see a free stage.
    for (double &v : p.node_ms)
        v = std::max(kMinNodePredMs, v);
    return p;
}

namespace {

/** Per-stage times of @p cuts, sorted descending (minimax key). */
std::vector<double>
sortedStageTimes(const NodeProfile &profile, const std::vector<int> &cuts)
{
    std::vector<double> times =
        PlacementPlanner::stageTimesFor(profile, cuts);
    std::sort(times.begin(), times.end(), std::greater<double>());
    return times;
}

/**
 * Lexicographic comparison with tolerance @p tol: stage times within
 * tol count as tied, so marginal rebalancing (shaving a fraction of a
 * ms off a non-bottleneck stage) does not buy an extra stage worker.
 */
bool
lexLess(const std::vector<double> &a, const std::vector<double> &b,
        double tol)
{
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
        if (a[i] < b[i] - tol)
            return true;
        if (a[i] > b[i] + tol)
            return false;
    }
    // Equal prefix: the plan with fewer stages has exhausted its
    // times; treat the shorter vector as NOT better here (stage-count
    // preference is handled by the caller).
    return false;
}

} // namespace

std::vector<double>
PlacementPlanner::stageTimesFor(const NodeProfile &profile,
                                const std::vector<int> &cuts)
{
    std::vector<double> times;
    double seg = 0.0;
    size_t next_cut = 0;
    for (int node = 0; node < kPipelineNodes; ++node) {
        seg += profile.node_ms[node];
        const bool boundary =
            next_cut < cuts.size() && cuts[next_cut] == node;
        if (boundary || node == kPipelineNodes - 1) {
            times.push_back(seg);
            seg = 0.0;
            if (boundary)
                ++next_cut;
        }
    }
    return times;
}

double
PlacementPlanner::periodFor(const NodeProfile &profile,
                            const std::vector<int> &cuts)
{
    return sortedStageTimes(profile, cuts).front();
}

StagePlan
PlacementPlanner::plan(const NodeProfile &profile, int max_stages)
{
    StagePlan best;
    best.node_ms = profile.node_ms;
    best.sequential_ms = profile.totalMs();
    best.period_ms = best.sequential_ms; // cuts = {} (sequential)
    std::vector<double> best_key = {best.period_ms};

    // 2^(kPipelineNodes-1) cut subsets: exhaustive is exact and cheap.
    // Plans compare by lexicographic minimax — first the bottleneck
    // stage, then the second-largest, ... — so among equal-period
    // topologies the one that also balances the remaining stages wins
    // (e.g. the backend-internal solver | marginalization+loop split
    // when FE bounds the period either way): it degrades most
    // gracefully when the workload drifts. Keys tied within the
    // tolerance prefer fewer stages (fewer handoffs).
    // 2% of the fattest sub-stage — the floor no topology can beat —
    // with an absolute component: a stage worker is only worth buying
    // when it saves meaningful wall time, so the epsilon-floored
    // stages of a degenerate profile (all sub-stages "free") can never
    // justify a cut (the plan degrades to sequential instead).
    const double max_node =
        *std::max_element(profile.node_ms.begin(), profile.node_ms.end());
    const double tol =
        std::max(kMinStageGainMs, 0.02 * max_node);
    for (int mask = 1; mask < (1 << (kPipelineNodes - 1)); ++mask) {
        std::vector<int> cuts;
        for (int b = 0; b < kPipelineNodes - 1; ++b)
            if (mask & (1 << b))
                cuts.push_back(b);
        if (static_cast<int>(cuts.size()) + 1 > max_stages)
            continue;
        std::vector<double> key = sortedStageTimes(profile, cuts);
        const bool better =
            lexLess(key, best_key, tol) ||
            (!lexLess(best_key, key, tol) &&
             cuts.size() < best.cuts.size());
        if (better) {
            best.cuts = std::move(cuts);
            best.period_ms = key.front();
            best_key = std::move(key);
        }
    }
    best.stage_ms = stageTimesFor(profile, best.cuts);
    return best;
}

} // namespace edx
