#include "runtime/pipeline.hpp"

#include "runtime/telemetry.hpp"

namespace edx {

FramePipeline::FramePipeline(Localizer &localizer,
                             const PipelineConfig &cfg)
    : loc_(localizer), cfg_(cfg), in_q_(cfg.queue_capacity),
      mid_q_(cfg.queue_capacity)
{
    if (cfg_.stages < 1)
        cfg_.stages = 1;
    if (cfg_.stages > 2)
        cfg_.stages = 2;
    if (cfg_.stages == 2) {
        frontend_thread_ =
            std::thread(&FramePipeline::frontendWorker, this);
        backend_thread_ = std::thread(&FramePipeline::backendWorker, this);
    }
}

FramePipeline::~FramePipeline() { close(); }

bool
FramePipeline::submit(FrameInput input)
{
    {
        std::lock_guard<std::mutex> lk(result_m_);
        if (closed_)
            return false;
        ++submitted_;
    }
    {
        std::lock_guard<std::mutex> lk(stats_m_);
        if (!first_submit_done_) {
            first_submit_done_ = true;
            first_submit_ = std::chrono::steady_clock::now();
        }
    }

    if (cfg_.stages == 1) {
        runSequential(std::move(input));
        return true;
    }
    if (!in_q_.push(std::move(input))) {
        std::lock_guard<std::mutex> lk(result_m_);
        --submitted_;
        return false;
    }
    return true;
}

void
FramePipeline::runSequential(FrameInput input)
{
    const bool valid = loc_.initialized() && input.hasImages();
    LocalizationResult res = loc_.processFrame(input);
    // Sequential topology: the stage spans are the block latencies
    // themselves (nothing overlaps).
    res.telemetry.frontend_stage_ms = res.frontendMs();
    res.telemetry.backend_stage_ms = res.backendMs();
    // Rejected frames carry no decision, matching the stages=2 path.
    if (valid && cfg_.scheduler) {
        BackendKernel k = kernelForMode(loc_.mode());
        res.telemetry.backend_offload = cfg_.scheduler->decide(
            stageSizeDriver(k, res.telemetry.frontend_workload),
            cfg_.accel_ms);
        res.telemetry.has_offload_decision = true;
    }
    {
        std::lock_guard<std::mutex> lk(stats_m_);
        stats_.frontend_busy_ms += res.frontendMs();
        stats_.backend_busy_ms += res.backendMs();
    }
    pushResult(std::move(res));
}

void
FramePipeline::frontendWorker()
{
    while (auto input = in_q_.pop()) {
        StageJob job;
        job.input = std::move(*input);
        double stage_ms = 0.0;
        if (loc_.initialized() && job.input.hasImages()) {
            StageTimer timer(stage_ms);
            job.fe = loc_.runFrontend(job.input.left, job.input.right);
            job.valid = true;
        }
        job.frontend_stage_ms = stage_ms;

        // Per-stage scheduling: the backend kernel's offload decision
        // is made here, at the stage boundary, from the sizes the
        // frontend just produced — before the backend stage runs.
        if (job.valid && cfg_.scheduler) {
            BackendKernel k = kernelForMode(loc_.mode());
            job.offload = cfg_.scheduler->decide(
                stageSizeDriver(k, job.fe.workload), cfg_.accel_ms);
            job.has_offload = true;
        }
        {
            std::lock_guard<std::mutex> lk(stats_m_);
            stats_.frontend_busy_ms += stage_ms;
            stats_.input_high_water =
                std::max(stats_.input_high_water, in_q_.highWater());
        }
        if (!mid_q_.push(std::move(job)))
            break;
    }
    mid_q_.close();
}

void
FramePipeline::backendWorker()
{
    while (auto job = mid_q_.pop())
        processBackend(std::move(*job));
}

void
FramePipeline::processBackend(StageJob job)
{
    LocalizationResult res;
    double stage_ms = 0.0;
    if (job.valid) {
        StageTimer timer(stage_ms);
        res = loc_.runBackend(job.input, job.fe);
    } else {
        res.frame_index = job.input.frame_index;
        res.mode = loc_.mode();
        res.ok = false;
    }
    res.telemetry.frontend_stage_ms = job.frontend_stage_ms;
    res.telemetry.backend_stage_ms = stage_ms;
    if (job.has_offload) {
        res.telemetry.backend_offload = job.offload;
        res.telemetry.has_offload_decision = true;
    }
    {
        std::lock_guard<std::mutex> lk(stats_m_);
        stats_.backend_busy_ms += stage_ms;
    }
    pushResult(std::move(res));
}

void
FramePipeline::pushResult(LocalizationResult res)
{
    std::lock_guard<std::mutex> lk(result_m_);
    results_.push_back(std::move(res));
    ++completed_;
    {
        std::lock_guard<std::mutex> slk(stats_m_);
        ++stats_.frames;
        if (first_submit_done_)
            stats_.wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - first_submit_)
                    .count();
    }
    result_cv_.notify_all();
}

bool
FramePipeline::poll(LocalizationResult &out)
{
    std::lock_guard<std::mutex> lk(result_m_);
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

bool
FramePipeline::awaitResult(LocalizationResult &out)
{
    std::unique_lock<std::mutex> lk(result_m_);
    result_cv_.wait(lk, [&] {
        return !results_.empty() || completed_ == submitted_;
    });
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

void
FramePipeline::flush()
{
    std::unique_lock<std::mutex> lk(result_m_);
    result_cv_.wait(lk, [&] { return completed_ == submitted_; });
}

void
FramePipeline::close()
{
    {
        std::lock_guard<std::mutex> lk(result_m_);
        if (closed_)
            return;
    }
    flush();
    {
        std::lock_guard<std::mutex> lk(result_m_);
        closed_ = true;
    }
    in_q_.close();
    if (frontend_thread_.joinable())
        frontend_thread_.join();
    if (backend_thread_.joinable())
        backend_thread_.join();
}

PipelineStats
FramePipeline::stats() const
{
    std::lock_guard<std::mutex> lk(stats_m_);
    return stats_;
}

} // namespace edx
