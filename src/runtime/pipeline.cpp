#include "runtime/pipeline.hpp"

#include <stdexcept>

#include "runtime/telemetry.hpp"

namespace edx {

const char *
pipeNodeName(int node)
{
    switch (static_cast<PipeNode>(node)) {
      case PipeNode::Fe:
        return "FE";
      case PipeNode::Sm:
        return "SM";
      case PipeNode::Tm:
        return "TM";
      case PipeNode::Solve:
        return "SOLVE";
      case PipeNode::Finish:
        return "FIN";
    }
    return "?";
}

std::string
describeCuts(const std::vector<int> &cuts)
{
    std::string out;
    size_t next_cut = 0;
    for (int node = 0; node < kPipelineNodes; ++node) {
        if (node > 0) {
            if (next_cut < cuts.size() && cuts[next_cut] == node - 1) {
                out += " | ";
                ++next_cut;
            } else {
                out += "+";
            }
        }
        out += pipeNodeName(node);
    }
    return out;
}

void
FramePipeline::buildTopology()
{
    if (cfg_.stages < 0)
        throw std::invalid_argument(
            "PipelineConfig: stages must be >= 1 (got " +
            std::to_string(cfg_.stages) + ")");

    if (cfg_.cuts.empty()) {
        if (cfg_.stages == 1) {
            cuts_ = {};
        } else if (cfg_.stages == 0 || cfg_.stages == 2) {
            cuts_ = {static_cast<int>(PipeNode::Tm)}; // frontend|backend
        } else {
            throw std::invalid_argument(
                "PipelineConfig: stages > 2 needs an explicit cut "
                "list (use the placement planner or set cuts)");
        }
    } else {
        int prev = -1;
        for (int c : cfg_.cuts) {
            if (c < 0 || c >= kPipelineNodes - 1)
                throw std::invalid_argument(
                    "PipelineConfig: cut " + std::to_string(c) +
                    " outside the valid boundaries [0, " +
                    std::to_string(kPipelineNodes - 2) + "]");
            if (c <= prev)
                throw std::invalid_argument(
                    "PipelineConfig: cuts must be strictly increasing");
            prev = c;
        }
        const int implied = static_cast<int>(cfg_.cuts.size()) + 1;
        // stages == 0 means "derive from the cuts"; anything explicit
        // must agree with them exactly.
        if (cfg_.stages != 0 && cfg_.stages != implied)
            throw std::invalid_argument(
                "PipelineConfig: stages (" +
                std::to_string(cfg_.stages) +
                ") inconsistent with cuts (imply " +
                std::to_string(implied) + ")");
        cuts_ = cfg_.cuts;
    }
    cfg_.stages = static_cast<int>(cuts_.size()) + 1;

    segments_.clear();
    int first = 0;
    for (int c : cuts_) {
        segments_.push_back({first, c + 1});
        first = c + 1;
    }
    segments_.push_back({first, kPipelineNodes});
}

FramePipeline::FramePipeline(Localizer &localizer,
                             const PipelineConfig &cfg)
    : loc_(localizer), cfg_(cfg), in_q_(cfg.queue_capacity)
{
    buildTopology();
    stats_.stages = cfg_.stages;
    if (cfg_.stages > 1) {
        for (int i = 0; i + 1 < cfg_.stages; ++i)
            stage_qs_.push_back(std::make_unique<BoundedQueue<StageJob>>(
                cfg_.queue_capacity));
        workers_.reserve(cfg_.stages);
        for (int s = 0; s < cfg_.stages; ++s)
            workers_.emplace_back(&FramePipeline::stageWorker, this, s);
    }
}

FramePipeline::~FramePipeline() { close(); }

bool
FramePipeline::submit(FrameInput input)
{
    {
        std::lock_guard<std::mutex> lk(result_m_);
        if (closed_)
            return false;
        ++submitted_;
    }
    {
        std::lock_guard<std::mutex> lk(stats_m_);
        if (!first_submit_done_) {
            first_submit_done_ = true;
            first_submit_ = std::chrono::steady_clock::now();
        }
    }

    if (cfg_.stages == 1) {
        runSequential(std::move(input));
        return true;
    }
    if (!in_q_.push(std::move(input))) {
        std::lock_guard<std::mutex> lk(result_m_);
        --submitted_;
        return false;
    }
    return true;
}

void
FramePipeline::runNode(int node, StageJob &job)
{
    switch (static_cast<PipeNode>(node)) {
      case PipeNode::Fe:
        loc_.runFrontendFe(job.input.left, job.input.right, job.fectx,
                           job.fe);
        break;
      case PipeNode::Sm:
        loc_.runFrontendSm(job.input.left, job.input.right, job.fectx,
                           job.fe);
        break;
      case PipeNode::Tm:
        loc_.runFrontendTm(job.input.left, job.fectx, job.fe);
        // Per-stage scheduling (Sec. VI-B): the backend kernel's
        // offload decision is made here, at the TM -> solve boundary,
        // from the sizes the frontend just produced — before the
        // backend sub-stages run.
        if (cfg_.scheduler) {
            BackendKernel k = kernelForMode(loc_.mode());
            job.offload = cfg_.scheduler->decide(
                stageSizeDriver(k, job.fe.workload), cfg_.accel_ms);
            job.has_offload = true;
        }
        break;
      case PipeNode::Solve:
        loc_.runBackendSolve(job.input, job.fe, job.bectx);
        break;
      case PipeNode::Finish:
        job.res = loc_.runBackendFinish(job.input, job.fe, job.bectx);
        break;
    }
}

void
FramePipeline::executeSegment(int stage, StageJob &job)
{
    const auto [first, last] = segments_[stage];
    double fe_ms = 0.0, be_ms = 0.0;
    if (job.valid) {
        for (int node = first; node < last; ++node) {
            // Frontend/backend-side attribution per node, so the
            // legacy two-sided busy split stays exact for segments
            // that cross the TM | solve boundary (and for stages=1).
            StageTimer timer(node <= static_cast<int>(PipeNode::Tm)
                                 ? fe_ms
                                 : be_ms);
            runNode(node, job);
        }
    }
    const double span_ms = fe_ms + be_ms;
    job.stage_span_ms[stage] = span_ms;
    {
        std::lock_guard<std::mutex> lk(stats_m_);
        stats_.stage_busy_ms[stage] += span_ms;
        stats_.frontend_busy_ms += fe_ms;
        stats_.backend_busy_ms += be_ms;
        if (stage == 0)
            stats_.input_high_water =
                std::max(stats_.input_high_water, in_q_.highWater());
    }
}

void
FramePipeline::finalizeJob(StageJob &job)
{
    LocalizationResult res;
    if (job.valid) {
        res = std::move(job.res);
    } else {
        res.frame_index = job.input.frame_index;
        res.mode = loc_.mode();
        res.ok = false;
    }
    res.telemetry.pipeline_stages = cfg_.stages;
    double fe_side = 0.0, be_side = 0.0;
    for (int s = 0; s < cfg_.stages; ++s) {
        res.telemetry.stage_span_ms[s] = job.stage_span_ms[s];
        if (segments_[s].first <= static_cast<int>(PipeNode::Tm))
            fe_side += job.stage_span_ms[s];
        else
            be_side += job.stage_span_ms[s];
    }
    if (cfg_.stages == 1) {
        // Sequential topology: the stage spans are the block latencies
        // themselves (nothing overlaps).
        res.telemetry.frontend_stage_ms = res.frontendMs();
        res.telemetry.backend_stage_ms = res.backendMs();
    } else {
        res.telemetry.frontend_stage_ms = fe_side;
        res.telemetry.backend_stage_ms = be_side;
    }
    if (job.has_offload) {
        res.telemetry.backend_offload = job.offload;
        res.telemetry.has_offload_decision = true;
    }

    // Online refit: feed the measured mode-kernel latency back into the
    // scheduler's windowed model (the ROADMAP's "scheduler online
    // refit" — the telemetry stream the runtime already records).
    if (cfg_.refit && job.valid && res.ok) {
        BackendKernel k = kernelForMode(loc_.mode());
        double measured_ms = 0.0;
        switch (k) {
          case BackendKernel::Projection:
            measured_ms = res.telemetry.tracking.projection_ms;
            break;
          case BackendKernel::KalmanGain:
            measured_ms = res.telemetry.msckf.kalman_gain_ms;
            break;
          case BackendKernel::Marginalization:
            measured_ms = res.telemetry.mapping.marginalization_ms;
            break;
        }
        // Frames where the kernel never executed (no keyframe, window
        // not full, no finished tracks) measure 0 ms against a nonzero
        // driver; feeding them would collapse the windowed fit toward
        // zero. Skip them, like the offline fit skips size<=0 samples.
        if (measured_ms > 0.0)
            cfg_.refit->observe(
                stageSizeDriver(k, res.telemetry.frontend_workload),
                measured_ms);
    }

    pushResult(std::move(res));
}

void
FramePipeline::stageWorker(int stage)
{
    if (stage == 0) {
        // Workers exist only for stages >= 2 (stages == 1 runs inline
        // through runSequential), so there is always a next queue.
        while (auto input = in_q_.pop()) {
            StageJob job;
            job.input = std::move(*input);
            job.valid = loc_.initialized() && job.input.hasImages();
            executeSegment(0, job);
            if (!stage_qs_[0]->push(std::move(job)))
                break;
        }
        stage_qs_[0]->close();
        return;
    }

    BoundedQueue<StageJob> &src = *stage_qs_[stage - 1];
    while (auto job = src.pop()) {
        executeSegment(stage, *job);
        if (stage + 1 < cfg_.stages) {
            if (!stage_qs_[stage]->push(std::move(*job)))
                break;
        } else {
            finalizeJob(*job);
        }
    }
    if (stage + 1 < cfg_.stages)
        stage_qs_[stage]->close();
}

void
FramePipeline::runSequential(FrameInput input)
{
    StageJob job;
    job.input = std::move(input);
    job.valid = loc_.initialized() && job.input.hasImages();
    executeSegment(0, job);
    finalizeJob(job);
}

void
FramePipeline::pushResult(LocalizationResult res)
{
    std::lock_guard<std::mutex> lk(result_m_);
    results_.push_back(std::move(res));
    ++completed_;
    {
        std::lock_guard<std::mutex> slk(stats_m_);
        ++stats_.frames;
        if (first_submit_done_)
            stats_.wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - first_submit_)
                    .count();
    }
    result_cv_.notify_all();
}

bool
FramePipeline::poll(LocalizationResult &out)
{
    std::lock_guard<std::mutex> lk(result_m_);
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

bool
FramePipeline::awaitResult(LocalizationResult &out)
{
    std::unique_lock<std::mutex> lk(result_m_);
    // Close-aware: `completed_ == submitted_` holds transiently
    // whenever the pipeline is momentarily idle between two producer
    // submissions, so it alone must never end a consumer loop — only
    // a close() that has drained the in-flight frames may.
    result_cv_.wait(lk, [&] {
        return !results_.empty() ||
               (closed_ && completed_ == submitted_);
    });
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

void
FramePipeline::flush()
{
    std::unique_lock<std::mutex> lk(result_m_);
    result_cv_.wait(lk, [&] { return completed_ == submitted_; });
}

void
FramePipeline::close()
{
    // Serialized end-to-end: the old unlocked gap between the closed_
    // check and flush() let two concurrent closers both flush and then
    // race in_q_.close()/join(). A late caller (e.g. the destructor
    // racing an explicit close()) blocks here until the first one has
    // joined the workers.
    std::lock_guard<std::mutex> lifecycle(lifecycle_m_);
    {
        std::lock_guard<std::mutex> lk(result_m_);
        if (close_done_)
            return;
        // submit() fails from this point on; frames already admitted
        // (submitted_ incremented) still drain through flush() below.
        closed_ = true;
        result_cv_.notify_all(); // consumers re-check the close gate
    }
    flush();
    in_q_.close();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    std::lock_guard<std::mutex> lk(result_m_);
    close_done_ = true;
}

PipelineStats
FramePipeline::stats() const
{
    std::lock_guard<std::mutex> lk(stats_m_);
    return stats_;
}

} // namespace edx
