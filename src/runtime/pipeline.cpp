#include "runtime/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/replan.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

const char *
pipeNodeName(int node)
{
    switch (static_cast<PipeNode>(node)) {
      case PipeNode::Fe:
        return "FE";
      case PipeNode::Sm:
        return "SM";
      case PipeNode::Tm:
        return "TM";
      case PipeNode::Solve:
        return "SOLVE";
      case PipeNode::Finish:
        return "FIN";
    }
    return "?";
}

std::string
describeCuts(const std::vector<int> &cuts)
{
    std::string out;
    size_t next_cut = 0;
    for (int node = 0; node < kPipelineNodes; ++node) {
        if (node > 0) {
            if (next_cut < cuts.size() && cuts[next_cut] == node - 1) {
                out += " | ";
                ++next_cut;
            } else {
                out += "+";
            }
        }
        out += pipeNodeName(node);
    }
    return out;
}

std::vector<int>
FramePipeline::resolveTopology(int stages, const std::vector<int> &cuts)
{
    if (stages < 0)
        throw std::invalid_argument(
            "PipelineConfig: stages must be >= 1 (got " +
            std::to_string(stages) + ")");

    if (cuts.empty()) {
        if (stages == 1)
            return {};
        if (stages == 0 || stages == 2)
            return {static_cast<int>(PipeNode::Tm)}; // frontend|backend
        throw std::invalid_argument(
            "PipelineConfig: stages > 2 needs an explicit cut "
            "list (use the placement planner or set cuts)");
    }
    int prev = -1;
    for (int c : cuts) {
        if (c < 0 || c >= kPipelineNodes - 1)
            throw std::invalid_argument(
                "PipelineConfig: cut " + std::to_string(c) +
                " outside the valid boundaries [0, " +
                std::to_string(kPipelineNodes - 2) + "]");
        if (c <= prev)
            throw std::invalid_argument(
                "PipelineConfig: cuts must be strictly increasing");
        prev = c;
    }
    const int implied = static_cast<int>(cuts.size()) + 1;
    // stages == 0 means "derive from the cuts"; anything explicit
    // must agree with them exactly.
    if (stages != 0 && stages != implied)
        throw std::invalid_argument(
            "PipelineConfig: stages (" + std::to_string(stages) +
            ") inconsistent with cuts (imply " +
            std::to_string(implied) + ")");
    return cuts;
}

std::vector<std::pair<int, int>>
FramePipeline::segmentsFor(const std::vector<int> &cuts)
{
    std::vector<std::pair<int, int>> segments;
    int first = 0;
    for (int c : cuts) {
        segments.push_back({first, c + 1});
        first = c + 1;
    }
    segments.push_back({first, kPipelineNodes});
    return segments;
}

FramePipeline::FramePipeline(Localizer &localizer,
                             const PipelineConfig &cfg)
    : loc_(localizer), cfg_(cfg)
{
    std::vector<int> cuts = resolveTopology(cfg_.stages, cfg_.cuts);
    cfg_.stages = static_cast<int>(cuts.size()) + 1;

    auto e = std::make_unique<Epoch>(cfg_.queue_capacity);
    e->stages = cfg_.stages;
    e->cuts = std::move(cuts);
    e->segments = segmentsFor(e->cuts);
    stats_.stages = e->stages;
    current_ = e.get();
    if (e->stages > 1) {
        for (int i = 0; i + 1 < e->stages; ++i)
            e->stage_qs.push_back(std::make_unique<BoundedQueue<StageJob>>(
                cfg_.queue_capacity));
        e->live_workers.store(e->stages);
        e->workers.reserve(e->stages);
        for (int s = 0; s < e->stages; ++s)
            e->workers.emplace_back(&FramePipeline::stageWorker, this,
                                    e.get(), s);
    }
    epochs_.push_back(std::move(e));
}

FramePipeline::~FramePipeline() { close(); }

std::vector<int>
FramePipeline::cuts() const
{
    std::lock_guard<std::mutex> lk(epoch_m_);
    return current_->cuts;
}

std::vector<std::pair<int, int>>
FramePipeline::segments() const
{
    std::lock_guard<std::mutex> lk(epoch_m_);
    return current_->segments;
}

bool
FramePipeline::installEpoch(std::vector<int> cuts)
{
    // Caller holds submit_m_: no producer is between its sequence
    // allocation and its queue push, so every frame admitted before
    // this point sits in (or has passed) the retiring epoch's queues
    // and every later one lands in the new epoch — sequence order and
    // queue order stay aligned, which the node gates depend on.
    Epoch *retired = nullptr;
    int stages = static_cast<int>(cuts.size()) + 1;
    {
        std::lock_guard<std::mutex> lk(epoch_m_);
        if (cuts == current_->cuts)
            return false;
        auto e = std::make_unique<Epoch>(cfg_.queue_capacity);
        e->index = ++epoch_counter_;
        e->stages = stages;
        e->cuts = std::move(cuts);
        e->segments = segmentsFor(e->cuts);
        if (e->stages > 1) {
            for (int i = 0; i + 1 < e->stages; ++i)
                e->stage_qs.push_back(
                    std::make_unique<BoundedQueue<StageJob>>(
                        cfg_.queue_capacity));
            e->live_workers.store(e->stages);
            e->workers.reserve(e->stages);
            for (int s = 0; s < e->stages; ++s)
                e->workers.emplace_back(&FramePipeline::stageWorker,
                                        this, e.get(), s);
        }
        retired = current_;
        current_ = e.get();
        epochs_.push_back(std::move(e));

        // Retire: the old epoch drains its admitted frames and its
        // workers exit; a producer parked on the full queue re-routes
        // to the new epoch (see submit()).
        retired->in_q.close();

        // Reap epochs whose workers have all exited (the atomic
        // decrement is each worker's final act, so join() returns
        // promptly). Keeps a long-running server from accumulating
        // exited threads across many swaps.
        for (auto it = epochs_.begin(); it != epochs_.end();) {
            if (it->get() == current_ ||
                (*it)->live_workers.load() != 0) {
                ++it;
                continue;
            }
            for (std::thread &w : (*it)->workers)
                if (w.joinable())
                    w.join();
            it = epochs_.erase(it);
        }
    }
    {
        std::lock_guard<std::mutex> lk(stats_m_);
        ++stats_.cut_swaps;
        stats_.stages = stages;
    }
    return true;
}

bool
FramePipeline::swapCuts(const std::vector<int> &cuts, int stages)
{
    std::vector<int> resolved = resolveTopology(stages, cuts); // throws
    std::lock_guard<std::mutex> sl(submit_m_);
    {
        std::lock_guard<std::mutex> lk(result_m_);
        if (closed_)
            return false;
    }
    return installEpoch(std::move(resolved));
}

void
FramePipeline::trySwapPending()
{
    // Called from a finish worker. A producer parked in submit() on a
    // full queue holds submit_m_ until the stages drain it — blocking
    // here would deadlock the drain, so the swap defers to the next
    // completed frame instead.
    std::unique_lock<std::mutex> sl(submit_m_, std::try_to_lock);
    if (!sl.owns_lock())
        return;
    std::vector<int> want;
    {
        std::lock_guard<std::mutex> lk(epoch_m_);
        if (!pending_swap_)
            return;
        want = std::move(*pending_swap_);
        pending_swap_.reset();
    }
    {
        std::lock_guard<std::mutex> lk(result_m_);
        if (closed_)
            return;
    }
    installEpoch(std::move(want));
}

bool
FramePipeline::submit(FrameInput input)
{
    std::unique_lock<std::mutex> sl(submit_m_);
    long seq;
    {
        std::lock_guard<std::mutex> lk(result_m_);
        if (closed_)
            return false;
        seq = submitted_++;
    }
    // A deferred replanner proposal applies here, before this frame
    // routes: the producer already holds submit_m_, so even when the
    // pipeline is saturated (and the finish worker's try-lock in
    // trySwapPending() never wins) a proposal still lands on the very
    // next submission.
    {
        std::optional<std::vector<int>> want;
        {
            std::lock_guard<std::mutex> lk(epoch_m_);
            want.swap(pending_swap_);
        }
        if (want)
            installEpoch(std::move(*want));
    }
    {
        std::lock_guard<std::mutex> lk(stats_m_);
        if (!first_submit_done_) {
            first_submit_done_ = true;
            first_submit_ = std::chrono::steady_clock::now();
        }
    }

    StageJob job;
    job.seq = seq;
    job.input = std::move(input);
    for (;;) {
        Epoch *e;
        {
            std::lock_guard<std::mutex> lk(epoch_m_);
            e = current_;
        }
        if (e->stages == 1) {
            // Sequential topology: execute inline on the caller. The
            // node gates still order it against in-flight frames of a
            // retiring staged epoch.
            sl.unlock();
            runInline(*e, std::move(job));
            return true;
        }
        if (e->in_q.pushOrKeep(job))
            return true;
        // The push failed: either a swap retired this epoch while we
        // were parked on its full queue (re-route to the new current
        // epoch) or close() is tearing the pipeline down.
        std::lock_guard<std::mutex> lk(result_m_);
        if (closed_) {
            voidSeq(seq);
            return false;
        }
    }
}

void
FramePipeline::waitNodeTurn(int node, long seq)
{
    std::unique_lock<std::mutex> lk(gate_m_);
    gate_cv_.wait(lk, [&] { return node_turn_[node] == seq; });
}

void
FramePipeline::advanceNodeTurn(int node)
{
    {
        std::lock_guard<std::mutex> lk(gate_m_);
        ++node_turn_[node];
        while (gate_holes_.count(node_turn_[node]))
            ++node_turn_[node];
    }
    gate_cv_.notify_all();
}

void
FramePipeline::voidSeq(long seq)
{
    // Caller holds result_m_. The seq was counted by submitted_ but
    // its frame never entered any epoch: unblock the node gates and
    // the in-order emitter past it.
    ++voided_;
    result_holes_.insert(seq);
    drainResultsLocked();
    result_cv_.notify_all();
    {
        std::lock_guard<std::mutex> lk(gate_m_);
        gate_holes_.insert(seq);
        for (int node = 0; node < kPipelineNodes; ++node)
            while (gate_holes_.count(node_turn_[node]))
                ++node_turn_[node];
    }
    gate_cv_.notify_all();
}

void
FramePipeline::runNode(int node, StageJob &job)
{
    switch (static_cast<PipeNode>(node)) {
      case PipeNode::Fe:
        loc_.runFrontendFe(job.input.left, job.input.right, job.fectx,
                           job.fe);
        break;
      case PipeNode::Sm:
        loc_.runFrontendSm(job.input.left, job.input.right, job.fectx,
                           job.fe);
        break;
      case PipeNode::Tm:
        loc_.runFrontendTm(job.input.left, job.fectx, job.fe);
        // Per-stage scheduling (Sec. VI-B): the backend kernel's
        // offload decision is made here, at the TM -> solve boundary,
        // from the sizes the frontend just produced — before the
        // backend sub-stages run.
        if (cfg_.scheduler) {
            BackendKernel k = kernelForMode(loc_.mode());
            job.offload = cfg_.scheduler->decide(
                stageSizeDriver(k, job.fe.workload), cfg_.accel_ms);
            job.has_offload = true;
        }
        break;
      case PipeNode::Solve:
        loc_.runBackendSolve(job.input, job.fe, job.bectx);
        break;
      case PipeNode::Finish:
        job.res = loc_.runBackendFinish(job.input, job.fe, job.bectx);
        break;
    }
}

void
FramePipeline::executeSegment(Epoch &e, int stage, StageJob &job)
{
    const auto [first, last] = e.segments[stage];
    double fe_ms = 0.0, be_ms = 0.0;
    for (int node = first; node < last; ++node) {
        // The per-node sequence gate: frames execute each sub-stage
        // strictly in submission order, across epochs — during a cut
        // swap the new epoch's first frame waits here until the old
        // epoch's tail has passed this node. Within one epoch the
        // single-worker FIFO chain satisfies the gate trivially; the
        // wait is untimed so gate stalls never pollute the busy spans
        // the planner profiles. Invalid frames skip the work but still
        // take and release their turn, or the gates would jam.
        waitNodeTurn(node, job.seq);
        if (job.valid) {
            // Frontend/backend-side attribution per node, so the
            // legacy two-sided busy split stays exact for segments
            // that cross the TM | solve boundary (and for stages=1).
            StageTimer timer(node <= static_cast<int>(PipeNode::Tm)
                                 ? fe_ms
                                 : be_ms);
            runNode(node, job);
        }
        advanceNodeTurn(node);
    }
    const double span_ms = fe_ms + be_ms;
    job.stage_span_ms[stage] = span_ms;
    {
        std::lock_guard<std::mutex> lk(stats_m_);
        stats_.stage_busy_ms[stage] += span_ms;
        stats_.frontend_busy_ms += fe_ms;
        stats_.backend_busy_ms += be_ms;
        if (stage == 0)
            stats_.input_high_water =
                std::max(stats_.input_high_water, e.in_q.highWater());
    }
}

void
FramePipeline::finalizeJob(Epoch &e, StageJob &job)
{
    LocalizationResult res;
    if (job.valid) {
        res = std::move(job.res);
    } else {
        res.frame_index = job.input.frame_index;
        res.mode = loc_.mode();
        res.ok = false;
    }
    res.telemetry.pipeline_stages = e.stages;
    double fe_side = 0.0, be_side = 0.0;
    for (int s = 0; s < e.stages; ++s) {
        res.telemetry.stage_span_ms[s] = job.stage_span_ms[s];
        if (e.segments[s].first <= static_cast<int>(PipeNode::Tm))
            fe_side += job.stage_span_ms[s];
        else
            be_side += job.stage_span_ms[s];
    }
    if (e.stages == 1) {
        // Sequential topology: the stage spans are the block latencies
        // themselves (nothing overlaps).
        res.telemetry.frontend_stage_ms = res.frontendMs();
        res.telemetry.backend_stage_ms = res.backendMs();
    } else {
        res.telemetry.frontend_stage_ms = fe_side;
        res.telemetry.backend_stage_ms = be_side;
    }
    if (job.has_offload) {
        res.telemetry.backend_offload = job.offload;
        res.telemetry.has_offload_decision = true;
    }

    // Online refit: feed the measured mode-kernel latency back into the
    // scheduler's windowed model (the ROADMAP's "scheduler online
    // refit" — the telemetry stream the runtime already records). The
    // kernel is the *result's* mode: after a mid-run mode switch the
    // finish of the last old-mode frame may overlap the first new-mode
    // solve, and its measurement belongs to the old mode's model.
    if (cfg_.refit && job.valid && res.ok) {
        BackendKernel k = kernelForMode(res.mode);
        double measured_ms = 0.0;
        switch (k) {
          case BackendKernel::Projection:
            measured_ms = res.telemetry.tracking.projection_ms;
            break;
          case BackendKernel::KalmanGain:
            measured_ms = res.telemetry.msckf.kalman_gain_ms;
            break;
          case BackendKernel::Marginalization:
            measured_ms = res.telemetry.mapping.marginalization_ms;
            break;
        }
        // Frames where the kernel never executed (no keyframe, window
        // not full, no finished tracks) measure 0 ms against a nonzero
        // driver; feeding them would collapse the windowed fit toward
        // zero. Skip them, like the offline fit skips size<=0 samples.
        if (measured_ms > 0.0)
            cfg_.refit->observe(
                stageSizeDriver(k, res.telemetry.frontend_workload),
                measured_ms);
    }

    // Self-repipelining: stream the completed frame into the replanner
    // and stage any proposal that cleared its hysteresis margin.
    if (cfg_.replanner && job.valid && res.ok) {
        std::vector<int> cur;
        {
            std::lock_guard<std::mutex> lk(epoch_m_);
            cur = current_->cuts;
        }
        if (auto plan = cfg_.replanner->observe(res.telemetry, res.mode,
                                                cur)) {
            std::lock_guard<std::mutex> lk(epoch_m_);
            pending_swap_ = std::move(plan->cuts);
        }
    }

    const long seq = job.seq;
    pushResult(seq, std::move(res));
    if (cfg_.replanner)
        trySwapPending();
}

void
FramePipeline::stageWorker(Epoch *e, int stage)
{
    if (stage == 0) {
        // Workers exist only for stages >= 2 (stages == 1 runs inline
        // through runInline), so there is always a next queue.
        while (auto job = e->in_q.pop()) {
            job->valid = loc_.initialized() && job->input.hasImages();
            executeSegment(*e, 0, *job);
            if (!e->stage_qs[0]->push(std::move(*job)))
                break;
        }
        e->stage_qs[0]->close();
        e->live_workers.fetch_sub(1);
        return;
    }

    BoundedQueue<StageJob> &src = *e->stage_qs[stage - 1];
    while (auto job = src.pop()) {
        executeSegment(*e, stage, *job);
        if (stage + 1 < e->stages) {
            if (!e->stage_qs[stage]->push(std::move(*job)))
                break;
        } else {
            finalizeJob(*e, *job);
        }
    }
    if (stage + 1 < e->stages)
        e->stage_qs[stage]->close();
    e->live_workers.fetch_sub(1);
}

void
FramePipeline::runInline(Epoch &e, StageJob job)
{
    job.valid = loc_.initialized() && job.input.hasImages();
    executeSegment(e, 0, job);
    finalizeJob(e, job);
}

void
FramePipeline::drainResultsLocked()
{
    // Emit the in-order prefix: during a swap the new epoch's first
    // frames can finalize while the old epoch's tail is still in
    // flight (the finish gate orders the *execution*, not the push),
    // so finalized results park in reorder_ until every earlier seq
    // has surfaced.
    for (;;) {
        if (result_holes_.count(next_emit_)) {
            result_holes_.erase(next_emit_);
            ++next_emit_;
            continue;
        }
        auto it = reorder_.find(next_emit_);
        if (it == reorder_.end())
            break;
        results_.push_back(std::move(it->second));
        reorder_.erase(it);
        ++completed_;
        ++next_emit_;
        {
            std::lock_guard<std::mutex> slk(stats_m_);
            ++stats_.frames;
            if (first_submit_done_)
                stats_.wall_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() -
                        first_submit_)
                        .count();
        }
    }
}

void
FramePipeline::pushResult(long seq, LocalizationResult res)
{
    std::lock_guard<std::mutex> lk(result_m_);
    reorder_.emplace(seq, std::move(res));
    drainResultsLocked();
    result_cv_.notify_all();
}

bool
FramePipeline::poll(LocalizationResult &out)
{
    std::lock_guard<std::mutex> lk(result_m_);
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

bool
FramePipeline::awaitResult(LocalizationResult &out)
{
    std::unique_lock<std::mutex> lk(result_m_);
    // Close-aware: `completed_ == submitted_` holds transiently
    // whenever the pipeline is momentarily idle between two producer
    // submissions, so it alone must never end a consumer loop — only
    // a close() that has drained the in-flight frames may.
    result_cv_.wait(lk, [&] {
        return !results_.empty() ||
               (closed_ && completed_ + voided_ == submitted_);
    });
    if (results_.empty())
        return false;
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

void
FramePipeline::flush()
{
    std::unique_lock<std::mutex> lk(result_m_);
    result_cv_.wait(lk,
                    [&] { return completed_ + voided_ == submitted_; });
}

void
FramePipeline::close()
{
    // Serialized end-to-end: a late caller (e.g. the destructor racing
    // an explicit close()) blocks here until the first one has joined
    // the workers.
    std::lock_guard<std::mutex> lifecycle(lifecycle_m_);
    {
        std::lock_guard<std::mutex> lk(result_m_);
        if (close_done_)
            return;
        // submit() fails from this point on; frames already admitted
        // (submitted_ incremented) still drain through flush() below.
        closed_ = true;
        result_cv_.notify_all(); // consumers re-check the close gate
    }
    flush();
    std::vector<Epoch *> epochs;
    {
        // submit_m_ excludes a racing swapCuts(): after this block no
        // further epoch can be installed (installers re-check closed_
        // under submit_m_), so the snapshot is complete.
        std::lock_guard<std::mutex> sl(submit_m_);
        std::lock_guard<std::mutex> lk(epoch_m_);
        for (auto &e : epochs_) {
            e->in_q.close();
            epochs.push_back(e.get());
        }
    }
    for (Epoch *e : epochs)
        for (std::thread &w : e->workers)
            if (w.joinable())
                w.join();
    std::lock_guard<std::mutex> lk(result_m_);
    close_done_ = true;
}

PipelineStats
FramePipeline::stats() const
{
    std::lock_guard<std::mutex> lk(stats_m_);
    return stats_;
}

} // namespace edx
