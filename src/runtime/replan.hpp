/**
 * @file
 * Online re-planning for the self-repipelining runtime (the ROADMAP's
 * "close the plan -> measure -> re-plan loop" item).
 *
 * The placement planner (runtime/placement.hpp) plans once from an
 * offline profile; a session whose workload drifts mid-run — VIO
 * transitioning to dense-keyframing SLAM, image resolution changing,
 * the map growing past the fitted regime — keeps a stale cut list
 * until restart. The SessionReplanner closes the loop: completed-frame
 * telemetry streams in, a windowed per-node profile is refit on every
 * tick (the same latency-vs-driver fits the offload scheduler's RLS
 * refit uses), and a new cut list is proposed only when its predicted
 * minimax stage time beats the *current* topology's predicted period
 * by a hysteresis margin — small oscillating gains never churn the
 * pipeline through swap after swap.
 *
 * The replanner is passive and thread-safe: observe() is called from
 * whatever thread completes frames (a pipeline finish worker, the
 * pool's adaptation tick) and returns the proposal; applying it (an
 * epoch swap in FramePipeline, a plan record in LocalizerPool) is the
 * caller's business.
 */
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "runtime/placement.hpp"

namespace edx {

/** Re-plan cadence and hysteresis policy. */
struct ReplanConfig
{
    /** Telemetry frames the rolling profile window holds. */
    int window = 48;

    /** Completed frames between re-plan evaluations. */
    int tick_frames = 24;

    /**
     * Minimum window frames of the *current* backend mode before a
     * plan is computed — right after a mode transition the window is
     * dominated by the old mode's latencies, which say nothing about
     * the new workload.
     */
    int min_mode_frames = 8;

    /**
     * A candidate plan is proposed only when its predicted period is
     * at most this fraction of the current topology's predicted period
     * (0.9: the swap must buy >= 10%). Both periods are evaluated
     * under the *same* freshly fitted profile, so the comparison never
     * mixes stale and fresh models.
     */
    double hysteresis = 0.9;

    /** ... and improves the period by at least this many ms. */
    double min_gain_ms = 0.2;

    /** Stage-count bound handed to PlacementPlanner::plan(). */
    int max_stages = kPipelineNodes;
};

/** Adaptation counters (fed into PoolStats / bench assertions). */
struct ReplanStats
{
    long observed = 0;  //!< telemetry frames ingested
    long ticks = 0;     //!< re-plan evaluations run
    long proposals = 0; //!< improving plans returned to the caller
    long held = 0;      //!< ticks where hysteresis kept the current plan
    long forced = 0;    //!< ticks forced by a resource shift
};

/** Windowed telemetry -> hysteresis-gated cut-list proposals. */
class SessionReplanner
{
  public:
    explicit SessionReplanner(const ReplanConfig &cfg = {});

    /**
     * Ingests one completed frame's telemetry. Every
     * ReplanConfig::tick_frames frames the rolling window is refit and
     * the planner re-run; returns the winning plan when it clears the
     * hysteresis margin over @p current_cuts, nullopt otherwise.
     */
    std::optional<StagePlan> observe(const FrameTelemetry &telemetry,
                                     BackendMode mode,
                                     const std::vector<int> &current_cuts);

    /**
     * Signals a compute-resource shift (the pool's elastic scaling
     * grew or retired a worker): the next observe() re-fits and
     * re-plans immediately instead of waiting out
     * ReplanConfig::tick_frames — the per-stage latency regime a
     * session observes changes with the machine's effective width, and
     * drifting through a stale cadence window wastes the gain. The
     * min_mode_frames and hysteresis gates still apply; only the
     * cadence is overridden.
     */
    void notifyResourceShift();

    ReplanStats stats() const;

    /** Drops the window and counters (new session, new workload). */
    void reset();

    const ReplanConfig &config() const { return cfg_; }

  private:
    struct Sample
    {
        FrameTelemetry telemetry;
        BackendMode mode;
    };

    mutable std::mutex m_;
    ReplanConfig cfg_;
    std::deque<Sample> window_;
    int since_tick_ = 0;
    bool force_tick_ = false; //!< set by notifyResourceShift()
    ReplanStats stats_;
};

} // namespace edx
