#include "runtime/solve_hub.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "backend/map.hpp"
#include "math/blas.hpp"

namespace edx {

namespace {
// Class of the backend stage the current thread is registered in, so
// kernel requests submitted deep inside a Localizer inherit it without
// plumbing a flag through every call site.
thread_local bool tl_safety_stage = false;
} // namespace

void
SolveHub::expectBackendEntries(int n, bool safety)
{
    if (n <= 0)
        return;
    std::lock_guard<std::mutex> lk(m_);
    pending_entries_[safety ? 1 : 0] += n;
    ++stats_.waves_announced;
    stats_.entries_announced += n;
    stats_.max_wave = std::max(stats_.max_wave, n);
    stats_.min_wave =
        stats_.min_wave == 0 ? n : std::min(stats_.min_wave, n);
}

void
SolveHub::enterBackend(bool safety)
{
    tl_safety_stage = safety;
    std::lock_guard<std::mutex> lk(m_);
    const int c = safety ? 1 : 0;
    ++active_[c];
    if (pending_entries_[c] > 0 && --pending_entries_[c] == 0)
        cv_.notify_all();
}

void
SolveHub::leaveBackend(bool safety)
{
    tl_safety_stage = false;
    std::lock_guard<std::mutex> lk(m_);
    const int c = safety ? 1 : 0;
    assert(active_[c] > 0);
    --active_[c];
    // A departing stage can complete the rendezvous for the parked
    // requests (they wait for waiting_ == active_).
    cv_.notify_all();
}

void
SolveHub::submit(Request &req)
{
    req.safety = tl_safety_stage;
    std::unique_lock<std::mutex> lk(m_);
    pending_.push_back(&req);
    ++waiting_[req.safety ? 1 : 0];
    if (req.safety)
        ++stats_.safety_requests;
    cv_.notify_all();

    while (!req.done) {
        // waiting >= active (not ==): a request submitted outside a
        // registered stage guard must not stall the rendezvous.
        // pending_entries == 0: announced gang members must all be
        // inside their stages before any batch executes, so an aligned
        // gang rendezvouses at full width. The full rendezvous sums
        // both classes — with no safety stage registered this is the
        // original single-class protocol, unchanged.
        const bool full_ready =
            !executing_ &&
            waiting_[0] + waiting_[1] >= active_[0] + active_[1] &&
            pending_entries_[0] + pending_entries_[1] == 0 &&
            !pending_.empty();
        // Safety fast path: a safety-class request rendezvouses only
        // against its safety peers, so it never parks waiting for a
        // best-effort stage to submit or leave. Checked after
        // full_ready so a complete rendezvous still batches at full
        // width (the wider grouping, same per-request results).
        const bool safety_ready =
            !executing_ && req.safety && !full_ready &&
            waiting_[1] >= active_[1] && pending_entries_[1] == 0;
        if (full_ready || safety_ready) {
            // Last arriver: lead the batch. Snapshot the pending set —
            // requests submitted while we compute belong to the next
            // rendezvous round. A safety-led round takes only the
            // safety-class requests; everyone else keeps waiting for
            // their own rendezvous.
            executing_ = true;
            std::vector<Request *> batch;
            if (full_ready) {
                batch = std::move(pending_);
                pending_.clear();
            } else {
                auto keep = pending_.begin();
                for (Request *r : pending_) {
                    if (r->safety)
                        batch.push_back(r);
                    else
                        *keep++ = r;
                }
                pending_.erase(keep, pending_.end());
                ++stats_.safety_batches;
            }
            lk.unlock();
            executeBatch(batch); // outputs are per-request buffers
            lk.lock();
            for (Request *r : batch)
                r->done = true;
            executing_ = false;
            cv_.notify_all();
        } else {
            cv_.wait(lk);
        }
    }
    --waiting_[req.safety ? 1 : 0];
}

void
SolveHub::executeBatch(std::vector<Request *> &batch)
{
    // Group by kernel kind; projection additionally groups by shared
    // map so the X build is paid once per distinct map.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Request *a, const Request *b) {
                         if (a->kind != b->kind)
                             return static_cast<int>(a->kind) <
                                    static_cast<int>(b->kind);
                         return a->map < b->map;
                     });

    size_t i = 0;
    while (i < batch.size()) {
        Request *head = batch[i];
        size_t j = i + 1;
        while (j < batch.size() && batch[j]->kind == head->kind &&
               (head->kind != BatchKernel::Projection ||
                batch[j]->map == head->map))
            ++j;
        const int n = static_cast<int>(j - i);
        const int k = static_cast<int>(head->kind);

        switch (head->kind) {
          case BatchKernel::Projection:
            executeProjectionGroup(batch.data() + i, n);
            break;
          case BatchKernel::SpdSolve:
            for (size_t r = i; r < j; ++r) {
                Request *req = batch[r];
                // The exact per-session flow: Cholesky, LU fallback.
                if (chol_.compute(*req->a)) {
                    *req->x = *req->b; // capacity-reusing copy
                    chol_.solveInPlace(*req->x);
                    req->success = true;
                } else if (lu_.compute(*req->a)) {
                    lu_.solveInto(*req->b, *req->x);
                    req->success = true;
                } else {
                    req->success = false;
                }
            }
            break;
          case BatchKernel::LuSolve:
            for (size_t r = i; r < j; ++r) {
                Request *req = batch[r];
                if (lu_.compute(*req->a)) {
                    lu_.solveInto(*req->b, *req->x);
                    req->success = true;
                } else {
                    req->success = false;
                }
            }
            break;
        }

        {
            std::lock_guard<std::mutex> lk(m_);
            stats_.requests[k] += n;
            stats_.batches[k] += 1;
            if (n > 1)
                stats_.grouped_requests[k] += n;
            stats_.max_batch[k] = std::max(stats_.max_batch[k], n);
            stats_.batch_hist[k][std::min(n, SolveHubStats::kHistMax)] +=
                1;
        }
        i = j;
    }
}

void
SolveHub::executeProjectionGroup(Request **reqs, int n)
{
    const Map *map = reqs[0]->map;
    const auto &pts = map->points();
    const int m = static_cast<int>(pts.size());

    // Shared X build: once per group (the per-session cost this batch
    // amortizes), identical to the direct Tracker build. For an
    // immutable map (registration priors) the build survives across
    // batches, keyed by point count — the same cache the hubless
    // Tracker path keeps.
    MatX *x = &x_shared_;
    bool build = true;
    if (reqs[0]->static_map) {
        if (x_cache_.size() >= kMaxStaticMapCaches &&
            x_cache_.find(map->uid()) == x_cache_.end()) {
            // Evict the least-recently-used entry before admitting a
            // new map (epoch churn must not grow the cache unbounded).
            auto lru = x_cache_.begin();
            for (auto it = x_cache_.begin(); it != x_cache_.end(); ++it)
                if (it->second.last_used < lru->second.last_used)
                    lru = it;
            x_cache_.erase(lru);
        }
        StaticMapCache &cache = x_cache_[map->uid()];
        cache.last_used = ++x_cache_clock_;
        x = &cache.x_rows;
        build = cache.points != m;
        cache.points = m;
    }
    if (build) {
        x->resizeNoInit(m, 4); // every row written below
        for (int i = 0; i < m; ++i) {
            double *row = x->data() + static_cast<size_t>(i) * 4;
            row[0] = pts[i].position[0];
            row[1] = pts[i].position[1];
            row[2] = pts[i].position[2];
            row[3] = 1.0;
        }
    }

    if (n == 1) {
        multiplyTransposedInto(*x, *reqs[0]->c, *reqs[0]->f);
        return;
    }

    // Stacked product F_all = X * [C_0; C_1; ...]^T. Every output
    // element is the same length-4 row dot the per-session kernel
    // computes, so the scatter below hands each session bit-identical
    // pixels.
    c_all_.resizeNoInit(3 * n, 4);
    for (int s = 0; s < n; ++s)
        std::memcpy(c_all_.data() + static_cast<size_t>(3 * s) * 4,
                    reqs[s]->c->data(), sizeof(double) * 12);
    multiplyTransposedInto(*x, c_all_, f_all_); // M x 3n
    for (int s = 0; s < n; ++s) {
        MatX &f = *reqs[s]->f;
        f.resize(m, 3);
        for (int i = 0; i < m; ++i) {
            const double *src =
                f_all_.data() + static_cast<size_t>(i) * 3 * n + 3 * s;
            double *dst = f.data() + static_cast<size_t>(i) * 3;
            dst[0] = src[0];
            dst[1] = src[1];
            dst[2] = src[2];
        }
    }
}

void
SolveHub::project(const Map *map, bool static_map, const MatX &c,
                  MatX &f)
{
    Request req;
    req.kind = BatchKernel::Projection;
    req.map = map;
    req.static_map = static_map;
    req.c = &c;
    req.f = &f;
    submit(req);
}

bool
SolveHub::solveSpd(const MatX &a, const MatX &b, MatX &x)
{
    Request req;
    req.kind = BatchKernel::SpdSolve;
    req.a = &a;
    req.b = &b;
    req.x = &x;
    submit(req);
    return req.success;
}

bool
SolveHub::luSolve(const MatX &a, const MatX &b, MatX &x)
{
    Request req;
    req.kind = BatchKernel::LuSolve;
    req.a = &a;
    req.b = &b;
    req.x = &x;
    submit(req);
    return req.success;
}

SolveHubStats
SolveHub::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    return stats_;
}

} // namespace edx
