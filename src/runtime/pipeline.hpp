/**
 * @file
 * The staged frame pipeline (Fig. 18 of the paper, in software),
 * generalized from the fixed frontend|backend split to an N-stage
 * topology over the frame's sub-stage graph:
 *
 *   FE (FD/IF/FC) | SM (MO/DR) | TM (DC/LSS) | solve | finish
 *
 * A *cut list* chooses where the stage boundaries fall: cut b splits
 * the chain between sub-stage b and b+1 (so the classic topology is
 * cuts = {2}, frontend|backend, and the dense-keyframing SLAM showcase
 * is cuts = {0, 2, 3}: FE | SM+TM | tracking+BA | marginalization+loop).
 * The placement planner (runtime/placement.hpp) chooses the cuts per
 * platform by minimizing the max predicted stage time over the hw/
 * accelerator latency models and the KernelLatencyModel fits.
 *
 *   submit() -> [bounded input queue] -> stage worker 0
 *            -> [bounded stage queue] -> stage worker 1 -> ... -> results
 *
 * Each stage is a single worker consuming a FIFO queue, so frames pass
 * through every stage strictly in submission order and the pipelined
 * pose stream is bit-identical to the sequential one — the concurrency
 * changes *when* a sub-stage runs, never *what* it computes. Sub-stages
 * with cross-frame couplings synchronize internally: the SLAM solve of
 * frame N+1 joins the finish of frame N before it mutates the map (see
 * core/localizer.hpp). Bounded queues give backpressure: a slow stage
 * throttles submit() instead of letting frames accumulate without
 * bound.
 *
 * **Epoch-based cut swaps (self-repipelining).** swapCuts() installs a
 * new topology *between frames* with no restart and no drain barrier:
 * the active topology is an *epoch* (its own stage workers and
 * queues); a swap retires the current epoch's input queue and routes
 * new submissions to a fresh epoch while the old epoch's in-flight
 * frames finish on the old topology. Correctness across the handoff
 * rests on two mechanisms:
 *
 *  - Per-node sequence gates: every frame carries a global submission
 *    sequence number, and each of the five sub-stage nodes executes
 *    frames strictly in that order — across epochs. The localizer
 *    therefore observes exactly the per-node call order of a single
 *    fixed topology, which is what makes every cut list (and so every
 *    swap schedule) bit-identical to the sequential run.
 *  - A sequence-ordered reorder buffer on the result side, so results
 *    surface in submission order even when the first frames of a new
 *    epoch finalize while the old epoch's tail is still in flight.
 *
 * When PipelineConfig::replanner is set the pipeline closes the loop
 * itself: completed-frame telemetry feeds the SessionReplanner and a
 * proposal that clears its hysteresis margin is swapped in
 * automatically (the ROADMAP's self-repipelining item).
 *
 * The offload scheduler (Sec. VI-B) plugs in at the TM -> solve
 * boundary: the decision for the backend kernel is computed from the
 * sizes the frontend just produced, per stage rather than at frame
 * end, and is stamped into the frame's telemetry. When
 * PipelineConfig::refit is set, the measured kernel latency of every
 * completed frame feeds the scheduler's online windowed refit.
 */
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/localizer.hpp"
#include "runtime/frame_queue.hpp"
#include "sched/scheduler.hpp"

namespace edx {

class SessionReplanner;

// kPipelineNodes (the sub-stage count) lives in runtime/telemetry.hpp,
// included via core/localizer.hpp.

/** The sub-stage graph nodes, in execution order. */
enum class PipeNode
{
    Fe = 0,     //!< feature extraction (FD + IF + FC)
    Sm = 1,     //!< stereo matching (MO + DR)
    Tm = 2,     //!< temporal matching (DC + LSS)
    Solve = 3,  //!< mode backend solver (tracking / MSCKF / BA)
    Finish = 4, //!< marginalization + loop detection / fusion
};

/** Short display name of a sub-stage node ("FE", "SM", ...). */
const char *pipeNodeName(int node);

/** Renders a cut list as "FE+SM+TM | SOLVE+FIN"-style topology. */
std::string describeCuts(const std::vector<int> &cuts);

/** Pipeline topology and policy. */
struct PipelineConfig
{
    /**
     * Stage count. 0 (the default) derives the topology: the classic
     * 2-stage frontend|backend split when @ref cuts is empty,
     * cuts.size() + 1 otherwise. An explicit value must be consistent:
     * with an empty cut list only 1 (sequential) and 2 (cuts = {2})
     * are valid — deeper topologies must name their cut points — and
     * with a cut list it must equal cuts.size() + 1. Invalid
     * combinations are rejected with std::invalid_argument — never
     * silently clamped or overridden.
     */
    int stages = 0;

    /**
     * Explicit cut points: strictly increasing boundaries in [0, 3],
     * where cut b splits the chain between sub-stage b and b+1. When
     * non-empty it defines the topology (stages must match
     * cuts.size() + 1 or be left at its default).
     */
    std::vector<int> cuts;

    size_t queue_capacity = 4; //!< bound of each inter-stage queue

    /**
     * Optional per-stage offload scheduler (borrowed). When set, every
     * frame's backend-kernel decision is computed at the TM -> solve
     * boundary against @ref accel_ms.
     *
     * Fit domain: the scheduler's KernelLatencyModel must be fit on
     * the *stage-boundary* size drivers (stageSizeDriver over the
     * frontend workload), not on the backend kernel sizes the fig16
     * benches fit on (map points / stacked rows / marginalized
     * landmarks) — those are a different variable and scale and only
     * exist after the backend has run.
     */
    const RuntimeScheduler *scheduler = nullptr;
    double accel_ms = 0.0; //!< modeled accelerator latency (compute+DMA)

    /**
     * Optional online-refit sink (borrowed, may alias the decision
     * scheduler's object): after every completed frame the measured
     * mode-kernel latency is fed to refit->observe() so the latency
     * model tracks workload drift (arm it with enableOnlineRefit()).
     */
    RuntimeScheduler *refit = nullptr;

    /**
     * Optional online replanner (borrowed): every completed frame's
     * telemetry feeds its rolling window, and a plan that clears its
     * hysteresis margin is swapped in automatically between frames
     * (see runtime/replan.hpp). The swap is applied opportunistically
     * from the finish worker — never blocking a producer parked in
     * submit() — and, failing that, by the next submit() call itself
     * (which already owns the producer lock), so even a saturating
     * producer sees a proposal land within one frame.
     */
    SessionReplanner *replanner = nullptr;
};

/** Aggregate pipeline accounting. */
struct PipelineStats
{
    long frames = 0;
    int stages = 1; //!< stage count of the *current* topology

    /** Total wall time each stage worker spent executing, per stage.
     *  Attributed by stage index within the frame's own epoch. */
    std::array<double, kPipelineNodes> stage_busy_ms{};

    double frontend_busy_ms = 0.0; //!< busy total of frontend-side stages
    double backend_busy_ms = 0.0;  //!< busy total of backend-side stages
    double wall_ms = 0.0;  //!< first submit -> last completion span
    size_t input_high_water = 0; //!< deepest input-queue backlog seen

    long cut_swaps = 0; //!< topologies swapped in mid-run (epochs - 1)

    /** Achieved end-to-end throughput, frames/s. */
    double
    fps() const
    {
        return wall_ms > 0.0 ? 1000.0 * frames / wall_ms : 0.0;
    }
};

/**
 * Runs one Localizer as a staged pipeline. The localizer is borrowed
 * and must not be touched by the caller between start and close().
 */
class FramePipeline
{
  public:
    /** @throws std::invalid_argument for an invalid stage/cut config. */
    explicit FramePipeline(Localizer &localizer,
                           const PipelineConfig &cfg = {});

    /** Drains in-flight frames and joins the workers. */
    ~FramePipeline();

    FramePipeline(const FramePipeline &) = delete;
    FramePipeline &operator=(const FramePipeline &) = delete;

    /**
     * Enqueues one frame (taking ownership of its images). Blocks while
     * the bounded input queue is full (backpressure). Returns false —
     * without enqueueing or side effects — once close() has begun.
     */
    bool submit(FrameInput input);

    /**
     * Swaps the active topology to @p cuts between frames: frames
     * already admitted finish on their epoch's topology while later
     * submissions take the new one, with no drain barrier and a pose
     * stream bit-identical to any fixed topology. Callable from any
     * thread except a stage worker. @return false when @p cuts already
     * is the active topology or close() has begun.
     * @throws std::invalid_argument for an invalid stage/cut combo
     *         (same validation as the constructor).
     */
    bool swapCuts(const std::vector<int> &cuts, int stages = 0);

    /**
     * Non-blocking: pops the next completed frame in submission order.
     * @return false when no result is ready.
     */
    bool poll(LocalizationResult &out);

    /**
     * Blocks until the next result. Returns false only once close()
     * has begun and every admitted frame has completed — a transient
     * "nothing in flight" gap between two producer submissions never
     * ends a consumer loop.
     */
    bool awaitResult(LocalizationResult &out);

    /** Blocks until every submitted frame has completed. */
    void flush();

    /** Flushes, stops the workers; submit() fails afterwards. Safe to
     *  call concurrently: late callers block until the first caller's
     *  close completes. */
    void close();

    const PipelineConfig &config() const { return cfg_; }

    /** The cut list of the current (newest) epoch. */
    std::vector<int> cuts() const;

    /** The node range [first, last) each current-epoch stage executes. */
    std::vector<std::pair<int, int>> segments() const;

    PipelineStats stats() const;

  private:
    /** A frame travelling between the stages. */
    struct StageJob
    {
        long seq = 0; //!< global submission sequence (gates + reorder)
        FrameInput input;
        FrontendOutput fe;
        FrontendStageContext fectx;
        BackendStageContext bectx;
        LocalizationResult res; //!< filled by the finish node
        bool valid = false; //!< false: bypasses every sub-stage
        std::array<double, kPipelineNodes> stage_span_ms{};
        OffloadDecision offload;
        bool has_offload = false;
    };

    /** One installed topology: its own stage workers and queues. */
    struct Epoch
    {
        int index = 0;
        int stages = 1;
        std::vector<int> cuts;
        std::vector<std::pair<int, int>> segments;
        BoundedQueue<StageJob> in_q;
        std::vector<std::unique_ptr<BoundedQueue<StageJob>>> stage_qs;
        std::vector<std::thread> workers;
        std::atomic<int> live_workers{0};

        explicit Epoch(size_t cap) : in_q(cap) {}
    };

    /**
     * Validates a stage/cut combination (the constructor contract) and
     * returns the resolved cut list. @throws std::invalid_argument.
     */
    static std::vector<int> resolveTopology(int stages,
                                            const std::vector<int> &cuts);
    static std::vector<std::pair<int, int>>
    segmentsFor(const std::vector<int> &cuts);

    /** Builds, spawns and installs an epoch. Caller holds submit_m_. */
    bool installEpoch(std::vector<int> cuts);

    void stageWorker(Epoch *e, int stage);
    void runNode(int node, StageJob &job);
    void executeSegment(Epoch &e, int stage, StageJob &job);
    void finalizeJob(Epoch &e, StageJob &job);
    void runInline(Epoch &e, StageJob job);
    void pushResult(long seq, LocalizationResult res);
    void drainResultsLocked(); //!< under result_m_

    /** Blocks until it is @p seq's turn at sub-stage @p node. */
    void waitNodeTurn(int node, long seq);
    void advanceNodeTurn(int node);
    /** Admitted-then-never-entered seq (close() race): unblocks the
     *  gates and the result order past it. */
    void voidSeq(long seq);

    /** Applies a deferred replanner proposal when no producer holds
     *  submit_m_ (never blocks — called from the finish worker). */
    void trySwapPending();

    Localizer &loc_;
    PipelineConfig cfg_;

    // Epoch bookkeeping. submit_m_ serializes producers *and* swaps,
    // so the global sequence order equals the per-epoch queue order
    // (the gates rely on it). epoch_m_ guards the epoch list/pointer.
    std::mutex submit_m_;
    mutable std::mutex epoch_m_;
    std::vector<std::unique_ptr<Epoch>> epochs_;
    Epoch *current_ = nullptr;
    int epoch_counter_ = 0;
    std::optional<std::vector<int>> pending_swap_;

    // Per-node sequence gates: node_turn_[n] is the next seq allowed
    // to execute sub-stage n (across every epoch).
    std::mutex gate_m_;
    std::condition_variable gate_cv_;
    std::array<long, kPipelineNodes> node_turn_{};
    std::set<long> gate_holes_; //!< voided seqs the gates skip

    // Completed results (unbounded: results are small and draining them
    // must never be able to deadlock the stages). reorder_ holds
    // finalized frames until every earlier seq has surfaced.
    mutable std::mutex result_m_;
    std::condition_variable result_cv_;
    std::deque<LocalizationResult> results_;
    std::map<long, LocalizationResult> reorder_;
    std::set<long> result_holes_; //!< voided seqs the emitter skips
    long next_emit_ = 0;
    long submitted_ = 0;
    long completed_ = 0;
    long voided_ = 0;         //!< admitted seqs that never entered
    bool closed_ = false;     //!< submit() gate, set when close() begins
    bool close_done_ = false; //!< workers joined (under result_m_)
    std::mutex lifecycle_m_;  //!< serializes concurrent close() calls

    mutable std::mutex stats_m_;
    PipelineStats stats_;
    bool first_submit_done_ = false;
    std::chrono::steady_clock::time_point first_submit_;
};

} // namespace edx
