/**
 * @file
 * The staged frame pipeline (Fig. 18 of the paper, in software).
 *
 * The paper's accelerator overlaps the shared vision frontend of frame
 * N+1 with the mode-specific backend of frame N, so steady-state
 * throughput is set by the slower stage instead of their sum. This
 * runtime reproduces that structure on CPU threads:
 *
 *   submit() -> [bounded input queue] -> frontend worker
 *            -> [bounded stage queue] -> backend worker -> results
 *
 * Each stage is a single worker consuming a FIFO queue, so frames pass
 * through both stages strictly in submission order and the pipelined
 * pose stream is bit-identical to the sequential one — the concurrency
 * changes *when* a stage runs, never *what* it computes. Bounded
 * queues give backpressure: a slow backend throttles submit() instead
 * of letting frames accumulate without bound.
 *
 * PipelineConfig::stages selects the topology:
 *   1  — sequential: submit() runs processFrame() inline (the seed
 *        benches' semantics, kept as the latency baseline), and
 *   2  — pipelined: frontend and backend overlap on worker threads.
 *
 * The offload scheduler (Sec. VI-B) plugs in at the frontend ->
 * backend boundary: the decision for the backend kernel is computed
 * from the sizes the frontend just produced, per stage rather than at
 * frame end, and is stamped into the frame's telemetry.
 */
#pragma once

#include <memory>
#include <thread>

#include "core/localizer.hpp"
#include "runtime/frame_queue.hpp"
#include "sched/scheduler.hpp"

namespace edx {

/** Pipeline topology and policy. */
struct PipelineConfig
{
    int stages = 2;            //!< 1 = sequential, 2 = frontend|backend
    size_t queue_capacity = 4; //!< bound of each inter-stage queue

    /**
     * Optional per-stage offload scheduler (borrowed). When set, every
     * frame's backend-kernel decision is computed at the frontend ->
     * backend boundary against @ref accel_ms.
     *
     * Fit domain: the scheduler's KernelLatencyModel must be fit on
     * the *stage-boundary* size drivers (stageSizeDriver over the
     * frontend workload), not on the backend kernel sizes the fig16
     * benches fit on (map points / stacked rows / marginalized
     * landmarks) — those are a different variable and scale and only
     * exist after the backend has run.
     */
    const RuntimeScheduler *scheduler = nullptr;
    double accel_ms = 0.0; //!< modeled accelerator latency (compute+DMA)
};

/** Aggregate pipeline accounting. */
struct PipelineStats
{
    long frames = 0;
    double frontend_busy_ms = 0.0; //!< total frontend-stage wall time
    double backend_busy_ms = 0.0;  //!< total backend-stage wall time
    double wall_ms = 0.0;  //!< first submit -> last completion span
    size_t input_high_water = 0; //!< deepest input-queue backlog seen

    /** Achieved end-to-end throughput, frames/s. */
    double
    fps() const
    {
        return wall_ms > 0.0 ? 1000.0 * frames / wall_ms : 0.0;
    }
};

/**
 * Runs one Localizer as a staged pipeline. The localizer is borrowed
 * and must not be touched by the caller between start and close().
 */
class FramePipeline
{
  public:
    explicit FramePipeline(Localizer &localizer,
                           const PipelineConfig &cfg = {});

    /** Drains in-flight frames and joins the workers. */
    ~FramePipeline();

    FramePipeline(const FramePipeline &) = delete;
    FramePipeline &operator=(const FramePipeline &) = delete;

    /**
     * Enqueues one frame (taking ownership of its images). Blocks while
     * the bounded input queue is full (backpressure). Returns false
     * after close().
     */
    bool submit(FrameInput input);

    /**
     * Non-blocking: pops the next completed frame in submission order.
     * @return false when no result is ready.
     */
    bool poll(LocalizationResult &out);

    /** Blocks until the next result (or all submitted frames done). */
    bool awaitResult(LocalizationResult &out);

    /** Blocks until every submitted frame has completed. */
    void flush();

    /** Flushes, stops the workers; submit() fails afterwards. */
    void close();

    const PipelineConfig &config() const { return cfg_; }
    PipelineStats stats() const;

  private:
    /** A frame travelling between the two stages. */
    struct StageJob
    {
        FrameInput input;
        FrontendOutput fe;
        bool valid = false; //!< false: bypassed the frontend (rejected)
        double frontend_stage_ms = 0.0;
        OffloadDecision offload;
        bool has_offload = false;
    };

    void frontendWorker();
    void backendWorker();
    void runSequential(FrameInput input);
    void processBackend(StageJob job);
    void pushResult(LocalizationResult res);

    Localizer &loc_;
    PipelineConfig cfg_;

    BoundedQueue<FrameInput> in_q_;
    BoundedQueue<StageJob> mid_q_;

    // Completed results (unbounded: results are small and draining them
    // must never be able to deadlock the stages).
    mutable std::mutex result_m_;
    std::condition_variable result_cv_;
    std::deque<LocalizationResult> results_;
    long submitted_ = 0;
    long completed_ = 0;
    bool closed_ = false;

    mutable std::mutex stats_m_;
    PipelineStats stats_;
    bool first_submit_done_ = false;
    std::chrono::steady_clock::time_point first_submit_;

    std::thread frontend_thread_;
    std::thread backend_thread_;
};

} // namespace edx
