/**
 * @file
 * Cross-session batched backend solves (the ROADMAP's "batched backend
 * solves" item).
 *
 * LocalizerPool sessions used to execute their backend linear-algebra
 * kernels independently; the hub groups *same-mode* kernels — the
 * registration projection, the VIO Kalman-gain solve, and the SLAM
 * marginalization solve — from concurrently running backend stages
 * into one blocked execution:
 *
 *  - Projection requests against the same shared prior map run as one
 *    stacked product: the camera matrices concatenate into C_all
 *    (3n x 4) and the shared homogeneous point matrix X (M x 4) is
 *    built and streamed ONCE for the whole group instead of once per
 *    session (the dominant cost at map scale — and exactly the DMA
 *    amortization the backend accelerator model gets from realistic
 *    batch sizes).
 *  - SPD (Kalman-gain) and LU (marginalization) solves execute as one
 *    grouped pass over hub-owned factorization workspaces, amortizing
 *    dispatch and workspace setup across the group.
 *
 * Correctness contract: a batched request returns *bit-identical*
 * results to the direct per-session kernel — grouping changes where
 * and when kernels run, never what they compute. The pool equivalence
 * tests assert identical poses with batching on and off.
 *
 * Rendezvous protocol: sessions register their backend stage with a
 * StageGuard. A request parks until every registered backend stage is
 * parked in a request of its own (or has left the stage); the last
 * arriver becomes the batch leader, executes all pending groups, and
 * wakes the waiters. With a single active backend a request executes
 * immediately. Deadlock-free: every active stage either submits a
 * request or leaves, so the rendezvous condition always resolves.
 *
 * Priority classes: a stage registered with StageGuard(hub, true)
 * (SAFETY_CRITICAL sessions) rendezvouses only against other
 * safety-class stages — its requests never park behind a best-effort
 * wave. Safety requests still fold into a full-width batch when the
 * complete rendezvous happens to be ready first, and with no safety
 * stage registered the protocol is exactly the single-class one.
 *
 * Latency trade-off: a parked request waits for the *slowest*
 * concurrent backend stage to either submit or leave — head-of-line
 * blocking up to that stage's remaining duration. This is what buys
 * deterministic bit-identity (grouping never changes results, only
 * where they execute), and it is why batch_solves is opt-in: enable
 * it for pools of same-mode sessions with comparable backend costs
 * (the fleet-serving shape); a heterogeneous pool mixing a long SLAM
 * backend with sub-millisecond VIO solves will stall the short
 * solves on the long stage.
 */
#pragma once

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "math/decomp.hpp"
#include "math/matx.hpp"

namespace edx {

class Map;

/** Kernel classes the hub batches (the paper's three backend modes). */
enum class BatchKernel
{
    Projection = 0, //!< registration: C x X over a shared map
    SpdSolve = 1,   //!< VIO Kalman gain: S K^T = H P
    LuSolve = 2,    //!< SLAM marginalization: Amm X = [Amr | bm]
};

/** Per-kernel batching counters. */
struct SolveHubStats
{
    /** Histogram buckets: batch sizes 1..kHistMax-1, last = overflow. */
    static constexpr int kHistMax = 9;

    long requests[3] = {0, 0, 0};
    long batches[3] = {0, 0, 0};  //!< grouped executions (size >= 1)
    long grouped_requests[3] = {0, 0, 0}; //!< served in a batch > 1
    int max_batch[3] = {0, 0, 0};

    // Gang-wave accounting (expectBackendEntries): the pool's window
    // announces every wave it releases, including the narrower waves a
    // timed-out window forces, so the observed width distribution is
    // visible (dynamic gang width).
    long waves_announced = 0;   //!< expectBackendEntries() calls
    long entries_announced = 0; //!< sum of announced wave widths
    int max_wave = 0;           //!< widest announced wave
    int min_wave = 0;           //!< narrowest announced wave (0: none)

    // Priority rendezvous accounting: requests from safety-class
    // stages, and batches a safety request led without waiting for the
    // full (best-effort-inclusive) rendezvous.
    long safety_requests = 0;
    long safety_batches = 0;

    /** Mean announced wave width (0.0 before any announcement). */
    double
    meanWave() const
    {
        return waves_announced > 0
                   ? static_cast<double>(entries_announced) /
                         waves_announced
                   : 0.0;
    }

    /** batch_hist[k][n]: executions of kernel k with batch size n. */
    long batch_hist[3][kHistMax + 1] = {};

    /** Mean batch size of @p k (0.0 before any request was served). */
    double
    meanBatch(BatchKernel k) const
    {
        const int i = static_cast<int>(k);
        return batches[i] > 0
                   ? static_cast<double>(requests[i]) / batches[i]
                   : 0.0;
    }

    /** Mean batch size across every kernel class. */
    double
    meanBatchAll() const
    {
        long req = 0, bat = 0;
        for (int i = 0; i < 3; ++i) {
            req += requests[i];
            bat += batches[i];
        }
        return bat > 0 ? static_cast<double>(req) / bat : 0.0;
    }
};

/** The cross-session batching rendezvous. */
class SolveHub
{
  public:
    SolveHub() = default;
    SolveHub(const SolveHub &) = delete;
    SolveHub &operator=(const SolveHub &) = delete;

    /**
     * RAII registration of one backend stage execution. @p safety
     * marks a SAFETY_CRITICAL session's stage: its kernel requests
     * rendezvous only against other safety-class stages, so a safety
     * backend never parks behind a best-effort wave (it still joins a
     * full batch when one happens to be ready). The default keeps the
     * single-class rendezvous bit-for-bit identical to before.
     */
    class StageGuard
    {
      public:
        explicit StageGuard(SolveHub *hub, bool safety = false)
            : hub_(hub), safety_(safety)
        {
            if (hub_)
                hub_->enterBackend(safety_);
        }
        ~StageGuard()
        {
            if (hub_)
                hub_->leaveBackend(safety_);
        }
        StageGuard(const StageGuard &) = delete;
        StageGuard &operator=(const StageGuard &) = delete;

      private:
        SolveHub *hub_;
        bool safety_;
    };

    void enterBackend(bool safety = false);
    void leaveBackend(bool safety = false);

    /**
     * Gang pre-announcement (LocalizerPool's gang window): declares
     * that @p n backend stages are about to enter together. Parked
     * requests hold their rendezvous until every announced stage has
     * entered, so the gang's first kernel requests group into one
     * full-width batch instead of whoever raced in first. The caller
     * must guarantee each announced entry actually happens (the pool's
     * released backends run with strict priority), or requests stall.
     * Safety-class entries must be announced with @p safety so the
     * priority rendezvous holds for them and only them.
     */
    void expectBackendEntries(int n, bool safety = false);

    /**
     * Projection kernel: f(i,:) = [x_i 1] * c^T over every point of
     * @p map (f is M x 3). Requests sharing the same map group into a
     * stacked product over one shared X build. @p static_map declares
     * the map immutable (registration prior maps): its homogeneous
     * point matrix is then cached across batches keyed by point count
     * (append-only), not rebuilt per batch. Never set it for a map
     * whose points move (SLAM local BA).
     */
    void project(const Map *map, bool static_map, const MatX &c,
                 MatX &f);

    /**
     * SPD solve a x = b (b is n x r): Cholesky with LU fallback, the
     * exact per-session Kalman-gain flow. @return false when both
     * factorizations fail (caller skips the update, as without a hub).
     */
    bool solveSpd(const MatX &a, const MatX &b, MatX &x);

    /** General LU solve a x = b. @return false when singular. */
    bool luSolve(const MatX &a, const MatX &b, MatX &x);

    SolveHubStats stats() const;

  private:
    struct Request
    {
        BatchKernel kind;
        // SpdSolve / LuSolve operands.
        const MatX *a = nullptr;
        const MatX *b = nullptr;
        MatX *x = nullptr;
        // Projection operands.
        const Map *map = nullptr;
        bool static_map = false;
        const MatX *c = nullptr;
        MatX *f = nullptr;

        bool done = false;
        bool success = true;
        bool safety = false; //!< submitted from a safety-class stage
    };

    /** Parks the request and runs the batch when last to arrive. */
    void submit(Request &req);

    /** Executes one snapshot of pending requests (leader only). */
    void executeBatch(std::vector<Request *> &batch);

    void executeProjectionGroup(Request **reqs, int n);

    mutable std::mutex m_;
    std::condition_variable cv_;
    // Per-class counters, indexed 0 = normal, 1 = safety. The full
    // rendezvous sums both (identical to the single-counter protocol
    // when no safety stage exists); the safety fast path looks only at
    // index 1.
    int active_[2] = {0, 0};  //!< backend stages currently registered
    int waiting_[2] = {0, 0}; //!< requests parked in submit()
    int pending_entries_[2] = {0, 0}; //!< announced entries not yet in
    bool executing_ = false;
    std::vector<Request *> pending_;
    SolveHubStats stats_;

    // Leader-owned execution workspaces (only one leader runs at a
    // time, so these are protected by `executing_`).
    MatX x_shared_; //!< homogeneous point rows of a projection group
    MatX c_all_;    //!< stacked camera matrices (3n x 4)
    MatX f_all_;    //!< stacked projection output (M x 3n)
    Cholesky chol_;
    PartialPivLU lu_;

    /**
     * Cached X per immutable map, keyed by Map::uid() — a
     * process-unique identity, so a freed map's entry can never be
     * mistaken for a new map at the same address. The cache is LRU-
     * bounded: a deployment that serves a fixed set of prior maps
     * never evicts, but a shared-map pool mints a fresh uid per
     * published epoch, and without the bound every superseded epoch's
     * X build would pin its memory for the hub's lifetime.
     */
    struct StaticMapCache
    {
        int points = -1;
        uint64_t last_used = 0;
        MatX x_rows;
    };
    static constexpr size_t kMaxStaticMapCaches = 8;
    uint64_t x_cache_clock_ = 0;
    std::unordered_map<uint64_t, StaticMapCache> x_cache_;
};

} // namespace edx
