/**
 * @file
 * Unified per-frame telemetry of the staged runtime.
 *
 * Every block of the localizer (frontend tasks, backend kernels, GPS
 * fusion) reports wall-clock latency and workload sizes. Before the
 * runtime layer existed these records were scattered over
 * `FrontendTiming`, `TrackingTiming`, `MsckfTiming`, `MappingTiming`
 * and their workload twins, and every block hand-rolled its own
 * `std::chrono` bookkeeping. This header centralizes both:
 *
 *  - StageTimer: RAII accumulator used by every timed block, and
 *  - FrameTelemetry: the single per-frame record the benches, the
 *    scheduler and the pipeline consume.
 *
 * The pipeline additionally stamps the *stage* spans (the wall time a
 * frame spent in the frontend stage and in the backend stage) and the
 * per-stage offload decision, which is computed at the frontend ->
 * backend boundary (Sec. VI-B) rather than at frame end.
 */
#pragma once

#include <array>
#include <chrono>

#include "backend/mapping.hpp"
#include "backend/msckf.hpp"
#include "backend/tracking.hpp"
#include "core/health.hpp"
#include "frontend/frontend.hpp"
#include "sched/scheduler.hpp"
#include "sim/scenario.hpp"

namespace edx {

/**
 * Number of nodes in the frame's sub-stage graph
 * (FE | SM | TM | solve | finish — see runtime/pipeline.hpp, whose
 * PipeNode enum names them). Lives here so FrameTelemetry's per-stage
 * spans share the constant without a circular include.
 */
constexpr int kPipelineNodes = 5;

/**
 * RAII wall-clock timer: accumulates the elapsed milliseconds into a
 * sink on destruction (or on an explicit stop()). Blocks that time
 * several sections into the same sink simply construct several scoped
 * timers; the sink accumulates.
 */
class StageTimer
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit StageTimer(double &sink_ms)
        : sink_(&sink_ms), start_(Clock::now())
    {}

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

    ~StageTimer() { stop(); }

    /** Milliseconds elapsed since construction (timer keeps running). */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         start_)
            .count();
    }

    /** Accumulates into the sink and disarms the timer. Idempotent. */
    void
    stop()
    {
        if (sink_) {
            *sink_ += elapsedMs();
            sink_ = nullptr;
        }
    }

  private:
    double *sink_;
    Clock::time_point start_;
};

/**
 * Matrix-size driver available at the frontend -> backend stage
 * boundary of the pipelined runtime.
 *
 * The paper's scheduler predicts the backend kernel's CPU time "from
 * the sizes the frontend just produced" so the offload decision is
 * ready *before* the backend stage starts (per-stage scheduling, not
 * per-frame-end). Each kernel's size is driven by a frontend product:
 * projection by the stereo matches that seed map-point association,
 * Kalman gain by the temporal tracks that terminate into MSCKF rows,
 * and marginalization by the stereo landmarks entering the window.
 */
inline double
stageSizeDriver(BackendKernel k, const FrontendWorkload &w)
{
    switch (k) {
      case BackendKernel::Projection:
        return static_cast<double>(w.stereo_matches);
      case BackendKernel::KalmanGain:
        return static_cast<double>(w.temporal_tracks);
      case BackendKernel::Marginalization:
        return static_cast<double>(w.stereo_matches);
    }
    return 0.0;
}

/**
 * The unified per-frame record: all block latencies and workload sizes
 * of one localized frame, plus the pipeline's stage accounting. Only
 * the active backend mode's records are meaningful.
 */
struct FrameTelemetry
{
    FrontendTiming frontend;
    FrontendWorkload frontend_workload;

    TrackingTiming tracking;
    TrackingWorkload tracking_workload;
    MsckfTiming msckf;
    MsckfWorkload msckf_workload;
    MappingTiming mapping;
    MappingWorkload mapping_workload;
    double fusion_ms = 0.0;

    // --- pipeline stage accounting (filled by FramePipeline) --------
    double frontend_stage_ms = 0.0; //!< wall time in frontend-side stages
    double backend_stage_ms = 0.0;  //!< wall time in backend-side stages

    /**
     * Pool QoS accounting (filled by LocalizerPool): wall time this
     * frame spent queued between admission and dispatch. Under
     * contention this is where a session's latency degrades first —
     * the per-class admission controller shapes it (reserved classes
     * stay near zero while best-effort queues age and shed).
     */
    double queue_wait_ms = 0.0;

    /**
     * Per-pipeline-stage wall time of this frame under the N-stage
     * topology (first pipeline_stages entries valid). The steady-state
     * pipelined frame interval is max over stages; frontend_stage_ms /
     * backend_stage_ms above remain the two-sided sums (stages whose
     * first sub-stage is frontend-side vs. backend-side) for the
     * legacy 2-stage consumers.
     */
    std::array<double, kPipelineNodes> stage_span_ms{};
    int pipeline_stages = 0;

    /** Steady-state frame interval of the recorded topology, ms. */
    double
    pipelinePeriodMs() const
    {
        double m = 0.0;
        for (int i = 0; i < pipeline_stages; ++i)
            m = stage_span_ms[i] > m ? stage_span_ms[i] : m;
        return m;
    }

    /**
     * Offload decision for the active backend kernel, computed at the
     * frontend -> backend stage boundary from the sizes the frontend
     * just produced (valid only when has_offload_decision).
     */
    OffloadDecision backend_offload;
    bool has_offload_decision = false;

    /**
     * Tracking-quality state of the session at this frame
     * (core/health.hpp). A pose stamped DeadReckoning came from the
     * internal-sensor fallback, not from vision — downstream consumers
     * must treat it as drifting, never as a vision-confirmed fix.
     */
    TrackingHealth health = TrackingHealth::Nominal;

    /** True when the pose was substituted by the fallback reckoner. */
    bool dead_reckoned = false;

    /** Tracking modes: pose-optimization inliers (-1: not applicable). */
    int tracking_inliers = -1;

    /** Tracking modes: the frame fell back to BoW relocalization. */
    bool relocalized = false;

    /** Frontend block latency, ms. */
    double frontendMs() const { return frontend.total(); }

    /** Total backend latency of the active mode, ms. */
    double
    backendMs(BackendMode mode) const
    {
        switch (mode) {
          case BackendMode::Registration:
            return tracking.total();
          case BackendMode::Vio:
            return msckf.total() + fusion_ms;
          case BackendMode::Slam:
            return tracking.total() + mapping.total();
        }
        return 0.0;
    }

    /** End-to-end (sequential) frame latency, ms. */
    double
    totalMs(BackendMode mode) const
    {
        return frontendMs() + backendMs(mode);
    }
};

} // namespace edx
