#include "runtime/replan.hpp"

#include <algorithm>

namespace edx {

SessionReplanner::SessionReplanner(const ReplanConfig &cfg) : cfg_(cfg)
{
    if (cfg_.window < 1)
        cfg_.window = 1;
    if (cfg_.tick_frames < 1)
        cfg_.tick_frames = 1;
    if (cfg_.min_mode_frames < 1)
        cfg_.min_mode_frames = 1;
    cfg_.max_stages = std::clamp(cfg_.max_stages, 1, kPipelineNodes);
}

void
SessionReplanner::reset()
{
    std::lock_guard<std::mutex> lk(m_);
    window_.clear();
    since_tick_ = 0;
    force_tick_ = false;
    stats_ = {};
}

void
SessionReplanner::notifyResourceShift()
{
    std::lock_guard<std::mutex> lk(m_);
    force_tick_ = true;
}

ReplanStats
SessionReplanner::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    return stats_;
}

std::optional<StagePlan>
SessionReplanner::observe(const FrameTelemetry &telemetry,
                          BackendMode mode,
                          const std::vector<int> &current_cuts)
{
    std::lock_guard<std::mutex> lk(m_);
    window_.push_back({telemetry, mode});
    while (static_cast<int>(window_.size()) > cfg_.window)
        window_.pop_front();
    ++stats_.observed;
    ++since_tick_;
    if (force_tick_) {
        ++stats_.forced;
    } else if (since_tick_ < cfg_.tick_frames) {
        return std::nullopt;
    }
    force_tick_ = false;
    since_tick_ = 0;
    ++stats_.ticks;

    // Fit only on trailing frames of the current mode: a window that
    // straddles a mode transition mixes incomparable latency regimes,
    // and the trailing run is exactly the new workload's evidence.
    std::vector<FrameTelemetry> frames;
    frames.reserve(window_.size());
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (it->mode != mode)
            break;
        frames.push_back(it->telemetry);
    }
    if (static_cast<int>(frames.size()) < cfg_.min_mode_frames) {
        ++stats_.held;
        return std::nullopt;
    }
    std::reverse(frames.begin(), frames.end());

    const NodeProfile profile =
        PlacementPlanner::profileFromTelemetry(frames, mode);
    StagePlan plan = PlacementPlanner::plan(profile, cfg_.max_stages);
    if (plan.cuts == current_cuts) {
        ++stats_.held;
        return std::nullopt;
    }

    // Hysteresis: both periods under the same fresh profile. A
    // marginal predicted win is noise; swapping on it would thrash.
    const double current_period =
        PlacementPlanner::periodFor(profile, current_cuts);
    const bool improves =
        plan.period_ms <= cfg_.hysteresis * current_period &&
        current_period - plan.period_ms >= cfg_.min_gain_ms;
    if (!improves) {
        ++stats_.held;
        return std::nullopt;
    }
    ++stats_.proposals;
    return plan;
}

} // namespace edx
