#include "hw/resources.hpp"

namespace edx {

ResourceReport
buildResourceReport(const AcceleratorConfig &cfg)
{
    ResourceReport report;
    const bool car = cfg.image_width >= 1000;
    report.part = car ? FpgaPart::virtex7() : FpgaPart::zynqUltrascale();

    // Per-resource scale of the drone instantiation relative to the car
    // (smaller line buffers, narrower matrix unit, fewer lanes).
    const double s_lut = car ? 1.0 : 0.66;
    const double s_ff = car ? 1.0 : 0.715;
    const double s_dsp = car ? 1.0 : 0.835;
    const double s_bram = car ? 1.0 : 0.734;
    auto scaled = [&](double lut, double ff, double dsp, double bram) {
        return ResourceVector{lut * s_lut, ff * s_ff, dsp * s_dsp,
                              bram * s_bram};
    };

    // Unit costs (engineering estimates, car-scale baseline). The
    // "unshared" column instantiates the frontend once per backend mode
    // and the backend matrix blocks once per kernel that uses them
    // (Tbl. I: mult x3, decomp x2, transpose x2, substitution x2,
    // inverse x1).
    report.items = {
        {"FE (FD+IF+FC)", scaled(190000, 120000, 700, 2.60), 1, 3},
        {"SM (MO+DR)", scaled(55000, 40000, 180, 0.80), 1, 3},
        {"TM (DC+LSS)", scaled(25000, 18000, 90, 0.25), 1, 3},
        {"Mat. multiply", scaled(30000, 25000, 200, 0.50), 1, 3},
        {"Mat. decompose", scaled(18000, 12000, 60, 0.30), 1, 2},
        {"Mat. inverse", scaled(8000, 6000, 30, 0.10), 1, 1},
        {"Mat. transpose", scaled(4000, 3000, 0, 0.15), 1, 2},
        {"Fwd/Bwd subst.", scaled(10000, 8000, 24, 0.20), 1, 2},
        {"Control + DMA", scaled(12000, 8000, 0, 0.10), 1, 3},
    };

    for (const ResourceItem &item : report.items) {
        report.shared_total += item.cost * item.shared_instances;
        report.unshared_total += item.cost * item.unshared_instances;
    }
    // Frontend share of the shared design (first three items).
    for (int i = 0; i < 3; ++i)
        report.frontend_total += report.items[i].cost;
    report.fe_block_total = report.items[0].cost;
    return report;
}

} // namespace edx
