/**
 * @file
 * FPGA resource model (Tbl. II of the paper).
 *
 * Per-unit LUT/FF/DSP/BRAM estimates for every hardware unit in the
 * design, with two aggregation modes:
 *
 *  - shared: the actual EUDOXUS design - one frontend (FE time-shared
 *    across the stereo pair) and one set of backend matrix blocks
 *    reused by all three modes;
 *  - not shared ("N.S." in Tbl. II): the hypothetical design that
 *    instantiates per-stream FE and per-kernel backend logic, which
 *    more than doubles every resource class and overflows the target
 *    parts.
 *
 * Unit costs are engineering estimates scaled by the platform's unit
 * shapes; the headline observation (sharing halves resources; the
 * frontend dominates; feature extraction dominates the frontend) is
 * structural and does not depend on the exact constants.
 */
#pragma once

#include <string>
#include <vector>

#include "hw/config.hpp"

namespace edx {

/** One FPGA resource bundle. */
struct ResourceVector
{
    double lut = 0.0;
    double ff = 0.0;
    double dsp = 0.0;
    double bram_mb = 0.0;

    ResourceVector &
    operator+=(const ResourceVector &o)
    {
        lut += o.lut;
        ff += o.ff;
        dsp += o.dsp;
        bram_mb += o.bram_mb;
        return *this;
    }

    ResourceVector
    operator*(double s) const
    {
        return {lut * s, ff * s, dsp * s, bram_mb * s};
    }
};

/** A named unit with its cost and replication factors. */
struct ResourceItem
{
    std::string name;
    ResourceVector cost;     //!< one instance
    int shared_instances;    //!< count in the shared design
    int unshared_instances;  //!< count in the N.S. design
};

/** Capacities of the target FPGA parts. */
struct FpgaPart
{
    std::string name;
    double lut;
    double ff;
    double dsp;
    double bram_mb;

    static FpgaPart
    virtex7()
    {
        // XC7V690T: 433k LUT, 866k FF, 3600 DSP, 52.9 Mb BRAM.
        return {"Virtex-7 690T", 433200, 866400, 3600, 52.9 / 8.0};
    }

    static FpgaPart
    zynqUltrascale()
    {
        // ZU9EG class: 274k LUT, 548k FF, 2520 DSP, 32.1 Mb BRAM.
        return {"Zynq US+ ZU9", 274080, 548160, 2520, 32.1 / 8.0};
    }
};

/** Full resource report for one platform. */
struct ResourceReport
{
    std::vector<ResourceItem> items;
    ResourceVector shared_total;
    ResourceVector unshared_total;
    ResourceVector frontend_total;  //!< shared-design frontend share
    ResourceVector fe_block_total;  //!< feature extraction alone
    FpgaPart part;
};

/** Builds the resource report for a platform configuration. */
ResourceReport buildResourceReport(const AcceleratorConfig &cfg);

} // namespace edx
