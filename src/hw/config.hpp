/**
 * @file
 * Accelerator platform configurations (Sec. VII-A of the paper).
 *
 * Two instantiations of the same design:
 *  - EDX-CAR: Virtex-7 class FPGA beside a PC host, PCIe 3.0 link
 *    (7.9 GB/s), 1280x720 input, larger matrix unit.
 *  - EDX-DRONE: Zynq UltraScale+ class SoC, AXI4 link (1.2 GB/s),
 *    640x480 input, smaller matrix unit.
 *
 * Cycle/power constants are engineering estimates for the respective
 * FPGA families; every comparison in the benches uses the *model*, so
 * the constants determine absolute numbers but not the qualitative
 * shape (who wins, where the offload crossover sits).
 */
#pragma once

#include <string>

namespace edx {

/** One accelerator platform instantiation. */
struct AcceleratorConfig
{
    std::string name;

    // Clocking and link.
    double clock_mhz = 200.0;       //!< accelerator fabric clock
    double dma_bandwidth_gbs = 7.9; //!< host link bandwidth, GB/s
    double dma_latency_us = 25.0;   //!< fixed per-transfer latency

    // Input geometry.
    int image_width = 1280;
    int image_height = 720;

    // Compute-unit shapes.
    int matrix_block = 16;   //!< B of the BxB MAC array (backend)
    int sad_lanes = 16;      //!< parallel SAD lanes (DR task)
    int lk_lanes = 16;       //!< parallel LK window lanes (TM block)
    int fc_samplers = 8;     //!< parallel BRIEF pattern samplers

    // Power model, watts.
    double fpga_static_w = 2.5;
    double fpga_dynamic_w = 6.0;  //!< when the accelerator is busy
    double cpu_active_w = 18.0;   //!< host CPU while computing
    double cpu_idle_w = 4.0;

    /** EDX-CAR: Virtex-7 + PC host (PCIe 3.0). */
    static AcceleratorConfig
    car()
    {
        AcceleratorConfig c;
        c.name = "EDX-CAR";
        c.clock_mhz = 200.0;
        c.dma_bandwidth_gbs = 7.9;
        c.dma_latency_us = 25.0;
        c.image_width = 1280;
        c.image_height = 720;
        c.matrix_block = 16;
        c.sad_lanes = 16;
        c.lk_lanes = 16;
        c.fc_samplers = 8;
        c.fpga_static_w = 3.5;
        c.fpga_dynamic_w = 8.0;
        c.cpu_active_w = 22.0;
        c.cpu_idle_w = 5.0;
        return c;
    }

    /** EDX-DRONE: Zynq UltraScale+ (AXI4 on-chip link). */
    static AcceleratorConfig
    drone()
    {
        AcceleratorConfig c;
        c.name = "EDX-DRONE";
        c.clock_mhz = 150.0;
        c.dma_bandwidth_gbs = 1.2;
        c.dma_latency_us = 5.0;
        c.image_width = 640;
        c.image_height = 480;
        c.matrix_block = 8;
        c.sad_lanes = 8;
        c.lk_lanes = 8;
        c.fc_samplers = 4;
        c.fpga_static_w = 1.8;
        c.fpga_dynamic_w = 3.2;
        c.cpu_active_w = 7.5; // embedded ARM class
        c.cpu_idle_w = 1.5;
        return c;
    }
};

} // namespace edx
