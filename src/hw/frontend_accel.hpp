/**
 * @file
 * Frontend accelerator timing model (Sec. V of the paper).
 *
 * Models the task-level pipeline of Fig. 12 at cycle granularity:
 *
 *   FD/IF (fused pixel pipeline) -> FC --+--> MO -> DR   (critical path)
 *                                        +--> DC -> LSS  (hidden)
 *
 * with the two design decisions of Sec. V-B:
 *  - the feature-extraction hardware is time-shared between the left
 *    and right streams (FE processes raw pixels, so one instance
 *    suffices without hurting throughput);
 *  - FE and SM are pipelined, so steady-state throughput is set by
 *    max(FE, SM) rather than FE + SM.
 *
 * Inputs are the actual per-frame workloads recorded by the software
 * frontend (pixels, features, match candidates), so accelerator latency
 * varies frame to frame exactly as the real workload does.
 */
#pragma once

#include "frontend/frontend.hpp"
#include "hw/config.hpp"

namespace edx {

/** Modeled accelerator latency of one frontend frame, milliseconds. */
struct FrontendAccelTiming
{
    double fd_if_ms = 0.0; //!< fused detection+filter pixel pipeline
    double fc_ms = 0.0;    //!< descriptor calculation
    double mo_ms = 0.0;    //!< stereo matching optimization
    double dr_ms = 0.0;    //!< disparity refinement
    double tm_ms = 0.0;    //!< temporal matching (DC + LSS)

    /** FE block (both images through the time-shared pipeline). */
    double feBlock() const { return fd_if_ms + fc_ms; }
    /** SM block. */
    double smBlock() const { return mo_ms + dr_ms; }

    /**
     * Frame latency: FE then SM (TM runs concurrently with SM and is
     * 10x+ shorter, Sec. V-B, so it never surfaces on the critical
     * path).
     */
    double latencyMs() const { return feBlock() + smBlock(); }

    /** Steady-state throughput with FE/SM pipelining, frames/s. */
    double
    pipelinedFps() const
    {
        double bottleneck = feBlock() > smBlock() ? feBlock() : smBlock();
        return bottleneck > 0.0 ? 1000.0 / bottleneck : 0.0;
    }

    /** Throughput without pipelining, frames/s. */
    double
    unpipelinedFps() const
    {
        return latencyMs() > 0.0 ? 1000.0 / latencyMs() : 0.0;
    }
};

/** The frontend accelerator model. */
class FrontendAccelerator
{
  public:
    explicit FrontendAccelerator(const AcceleratorConfig &cfg)
        : cfg_(cfg)
    {}

    /** Models one frame given the measured software workload. */
    FrontendAccelTiming model(const FrontendWorkload &w) const;

    const AcceleratorConfig &config() const { return cfg_; }

  private:
    double cyclesToMs(double cycles) const
    {
        return cycles / (cfg_.clock_mhz * 1e3);
    }

    AcceleratorConfig cfg_;
};

} // namespace edx
