/**
 * @file
 * Backend accelerator timing model (Sec. VI of the paper).
 *
 * The backend accelerator is a single substrate of five matrix-
 * operation building blocks (Tbl. I): multiplication, decomposition,
 * inverse, transpose, and forward/backward substitution, fed by
 * scratchpads and executed block-by-block on a BxB MAC array. The three
 * variation-dominating kernels map onto compositions of these
 * primitives:
 *
 *  - Projection (registration): C(3x4) x X(4xM)
 *  - Kalman gain (VIO): S = H P H^T + R ; solve S K^T = (P H^T)^T
 *  - Marginalization (SLAM): Schur complement with the [A diag; D 6x6]
 *    Amm structure (specialized inverse, Sec. VI-A)
 *
 * Each kernel model returns compute cycles plus the DMA cost of moving
 * its operands over the platform link, which is what makes offloading
 * small kernels unprofitable (the scheduler's decision problem,
 * Sec. VI-B).
 */
#pragma once

#include "hw/config.hpp"

namespace edx {

/** Modeled accelerator cost of one kernel invocation. */
struct AccelKernelCost
{
    double compute_ms = 0.0;
    double dma_ms = 0.0;

    double totalMs() const { return compute_ms + dma_ms; }
};

/** The backend accelerator model. */
class BackendAccelerator
{
  public:
    explicit BackendAccelerator(const AcceleratorConfig &cfg,
                                bool exploit_symmetry = true)
        : cfg_(cfg), exploit_symmetry_(exploit_symmetry)
    {}

    // --- Matrix-primitive cycle models (the five blocks of Tbl. I). ---

    /** Dense multiply (m x k) * (k x n) on the BxB array. */
    double multiplyCycles(int m, int k, int n) const;

    /** Cholesky-style decomposition of an n x n matrix. */
    double decomposeCycles(int n) const;

    /** Inverse: diagonal reciprocals + specialized 6x6 core. */
    double inverseBlockStructuredCycles(int diag_n, int dense_n) const;

    /** Transpose of an m x n matrix (B elements per cycle). */
    double transposeCycles(int m, int n) const;

    /** Forward+backward substitution: n x n triangular, r right sides. */
    double substituteCycles(int n, int r) const;

    // --- Kernel compositions. -----------------------------------------

    /**
     * Registration projection kernel: 3x4 camera matrix times M
     * homogeneous map points (Tbl. I: multiplication only).
     */
    AccelKernelCost projection(int map_points) const;

    /**
     * VIO Kalman-gain kernel for an H of @p rows x @p dim over a
     * covariance of @p dim x @p dim (Equ. 1): two multiplies, one
     * decomposition, forward/backward substitution, one transpose.
     * The symmetric-S optimization halves the S-forming multiply.
     */
    AccelKernelCost kalmanGain(int rows, int dim) const;

    /**
     * SLAM marginalization kernel: Amm is (3*landmarks + 6) square with
     * the diagonal+6x6 structure; the remaining block is 6 wide. All
     * five primitives participate (Tbl. I).
     */
    AccelKernelCost marginalization(int landmarks) const;

    /** DMA time for @p bytes over the platform link. */
    double dmaMs(double bytes) const;

    const AcceleratorConfig &config() const { return cfg_; }

  private:
    double cyclesToMs(double cycles) const
    {
        return cycles / (cfg_.clock_mhz * 1e3);
    }

    AcceleratorConfig cfg_;
    bool exploit_symmetry_;
};

} // namespace edx
