#include "hw/backend_accel.hpp"

#include <cmath>

namespace edx {

namespace {

/** Ceiling division for block counts. */
int
blocksOf(int n, int b)
{
    return (n + b - 1) / b;
}

} // namespace

double
BackendAccelerator::multiplyCycles(int m, int k, int n) const
{
    // Each BxB x BxB block product takes B cycles on the B^2 MAC array.
    const int b = cfg_.matrix_block;
    return static_cast<double>(blocksOf(m, b)) * blocksOf(k, b) *
           blocksOf(n, b) * b;
}

double
BackendAccelerator::decomposeCycles(int n) const
{
    // Right-looking blocked Cholesky: ~n^3/3 MACs on B^2 units, plus a
    // serial pipeline ramp of ~4 cycles per column for the sqrt/divide.
    const int b = cfg_.matrix_block;
    return (static_cast<double>(n) * n * n / 3.0) / (b * b) + 4.0 * n;
}

double
BackendAccelerator::inverseBlockStructuredCycles(int diag_n,
                                                 int dense_n) const
{
    // Diagonal part: one reciprocal per element through a pipelined
    // divider; dense part: the specialized 6x6 (or general small) core
    // via Gauss-Jordan, ~2n^3 ops on the array.
    const int b = cfg_.matrix_block;
    double dense =
        2.0 * dense_n * dense_n * dense_n / (b * b) + 8.0 * dense_n;
    return diag_n + dense;
}

double
BackendAccelerator::transposeCycles(int m, int n) const
{
    return static_cast<double>(m) * n / cfg_.matrix_block;
}

double
BackendAccelerator::substituteCycles(int n, int r) const
{
    // Triangular solve: n^2/2 MACs per right-hand side, forward plus
    // backward, on the B^2 array with a per-row serial dependence.
    const int b = cfg_.matrix_block;
    return 2.0 * (static_cast<double>(n) * n / 2.0) * r / (b * b) +
           2.0 * n;
}

double
BackendAccelerator::dmaMs(double bytes) const
{
    return cfg_.dma_latency_us * 1e-3 +
           bytes / (cfg_.dma_bandwidth_gbs * 1e6);
}

AccelKernelCost
BackendAccelerator::projection(int map_points) const
{
    AccelKernelCost c;
    // C (3x4) x X (4 x M), one multiplication (Tbl. I row 1).
    c.compute_ms = cyclesToMs(multiplyCycles(3, 4, map_points));
    // DMA: M homogeneous points in (4 doubles), 2D projections out.
    const double bytes_in = 4.0 * 8.0 * map_points + 12 * 8.0;
    const double bytes_out = 2.0 * 8.0 * map_points;
    c.dma_ms = dmaMs(bytes_in + bytes_out);
    return c;
}

AccelKernelCost
BackendAccelerator::kalmanGain(int rows, int dim) const
{
    AccelKernelCost c;
    // PH^T = P (dim x dim) x H^T (dim x rows): transpose + multiply.
    double cycles = transposeCycles(rows, dim);
    cycles += multiplyCycles(dim, dim, rows);
    // S = H x PH^T (rows x rows); symmetric S halves the work
    // (Sec. VI-A optimization).
    double s_mult = multiplyCycles(rows, dim, rows);
    cycles += exploit_symmetry_ ? 0.5 * s_mult : s_mult;
    // Decompose S, then forward/backward substitution for dim columns.
    cycles += decomposeCycles(rows);
    cycles += substituteCycles(rows, dim);
    c.compute_ms = cyclesToMs(cycles);
    // DMA: H (rows x dim) and P (dim x dim, half if symmetric) in,
    // K (dim x rows) out.
    double p_bytes = 8.0 * dim * dim * (exploit_symmetry_ ? 0.5 : 1.0);
    double bytes = 8.0 * rows * dim + p_bytes + 8.0 * dim * rows;
    c.dma_ms = dmaMs(bytes);
    return c;
}

AccelKernelCost
BackendAccelerator::marginalization(int landmarks) const
{
    AccelKernelCost c;
    const int m = 3 * landmarks + 6; // Amm side (landmarks + old pose)
    const int r = 6;                 // remaining block

    // Amm^-1 with the specialized structure: diagonal reciprocals for
    // the landmark part and the 6x6 dense core (Sec. VI-A). The
    // landmark part is 3x3-block diagonal; the hardware treats it as
    // 3x3 inversions through the same small-core path.
    double cycles = inverseBlockStructuredCycles(3 * landmarks, 6);
    // Schur complement: Arm (r x m) x Amm^-1 (m x m) exploits the
    // diagonal structure -> column scaling (m*r/B cycles) plus the
    // 6-wide dense tail; then (r x m) x (m x r) multiply; transpose and
    // substitution steps complete the prior assembly.
    cycles += static_cast<double>(m) * r / cfg_.matrix_block;
    cycles += multiplyCycles(r, m, r);
    cycles += transposeCycles(m, r);
    cycles += decomposeCycles(r);
    cycles += substituteCycles(r, r);
    c.compute_ms = cyclesToMs(cycles);

    // DMA: the sparse Amm blocks (diagonal 3x3 blocks + borders), Amr,
    // Arr in; the 6x6 prior out.
    double bytes = 8.0 * (9.0 * landmarks + 2.0 * m * r + r * r) +
                   8.0 * r * r;
    c.dma_ms = dmaMs(bytes);
    return c;
}

} // namespace edx
