#include "hw/frontend_accel.hpp"

namespace edx {

FrontendAccelTiming
FrontendAccelerator::model(const FrontendWorkload &w) const
{
    FrontendAccelTiming t;

    // FD + IF: a fused stencil pipeline consuming one pixel per cycle
    // (line buffers feed both the FAST ring test and the Gaussian
    // window). The single FE instance is time-shared across the two
    // camera streams, so both images pass through sequentially.
    const double pixels = static_cast<double>(w.image_pixels);
    t.fd_if_ms = cyclesToMs(2.0 * pixels);

    // FC: per feature, orientation (circular moment accumulation) plus
    // the 256 rotated-BRIEF comparisons, parallelized across the
    // configured sampler lanes. ~(moment + 2*256/samplers) cycles.
    const double fc_cycles_per_feature =
        96.0 + 2.0 * 256.0 / cfg_.fc_samplers;
    t.fc_ms = cyclesToMs(fc_cycles_per_feature *
                         (w.left_features + w.right_features));

    // MO: one 256-bit XOR+popcount per candidate pair per cycle. The
    // hardware streams every (left, right) pair through the comparator
    // lanes, so this is the all-pairs count — independent of the
    // software matcher's row-band bucketing (whose evaluated-candidate
    // count is w.stereo_candidates).
    const double mo_candidates =
        static_cast<double>(w.stereo_candidates_allpairs);
    t.mo_ms = cyclesToMs(mo_candidates);

    // DR: block matching re-streams both raw images through the DR
    // stencil buffer (the second DRAM read of Sec. V-C) at an amortized
    // 2 pixels/cycle/image including window overlap, then evaluates the
    // (2*4+1)^2 SAD window at 7 disparity taps around each proposed
    // match on the SAD lanes. This is what makes SM the longest block
    // (roughly 2-3x the FE latency, Sec. V-B) and the frontend
    // throughput limiter.
    const double dr_stream_cycles = 4.0 * pixels;
    const double dr_cycles_per_match = 81.0 * 7.0 / cfg_.sad_lanes + 8.0;
    t.dr_ms = cyclesToMs(dr_stream_cycles +
                         dr_cycles_per_match * w.stereo_matches);

    // TM: per tracked feature, LK window gradient + iterations. The
    // derivative and update accumulations stream through the LK lanes:
    // 15x15 window x ~6 iterations x 3 levels.
    const double tm_cycles_per_track =
        225.0 * 6.0 * 3.0 / cfg_.lk_lanes + 32.0;
    t.tm_ms = cyclesToMs(tm_cycles_per_track * w.temporal_tracks);

    return t;
}

} // namespace edx
