/**
 * @file
 * Per-frame energy model (Fig. 19 of the paper).
 *
 * Baseline (software only): the host CPU is active for the whole frame
 * computation. Accelerated (EUDOXUS): the CPU is active only for the
 * non-offloaded portion, the FPGA burns static power for the whole
 * frame interval plus dynamic power while its units are busy.
 */
#pragma once

#include "hw/config.hpp"

namespace edx {

/** Energy of one frame, joules. */
struct FrameEnergy
{
    double cpu_j = 0.0;
    double fpga_j = 0.0;

    double totalJ() const { return cpu_j + fpga_j; }
};

/** The energy model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const AcceleratorConfig &cfg) : cfg_(cfg) {}

    /** Baseline: all-software frame of @p cpu_ms total latency. */
    FrameEnergy
    baseline(double cpu_ms) const
    {
        FrameEnergy e;
        e.cpu_j = cfg_.cpu_active_w * cpu_ms * 1e-3;
        return e;
    }

    /**
     * Accelerated frame.
     * @param cpu_active_ms host compute not offloaded
     * @param accel_busy_ms time accelerator units are switching
     * @param frame_ms total frame wall-clock (static power window)
     */
    FrameEnergy
    accelerated(double cpu_active_ms, double accel_busy_ms,
                double frame_ms) const
    {
        FrameEnergy e;
        e.cpu_j = (cfg_.cpu_active_w * cpu_active_ms +
                   cfg_.cpu_idle_w * (frame_ms - cpu_active_ms)) *
                  1e-3;
        e.fpga_j = (cfg_.fpga_static_w * frame_ms +
                    cfg_.fpga_dynamic_w * accel_busy_ms) *
                   1e-3;
        return e;
    }

  private:
    AcceleratorConfig cfg_;
};

} // namespace edx
