#include "hw/stencil.hpp"

#include <algorithm>

namespace edx {

StencilPlan
planStencilBuffers(int width, int height,
                   const std::vector<StencilConsumer> &consumers)
{
    StencilPlan plan;
    if (consumers.empty())
        return plan;

    // Shared SB: one buffer must hold every pixel from production until
    // its *last* consumption. At one pixel per cycle, the occupancy is
    // the maximum consumption delay plus the live window lines.
    double max_delay = 0.0;
    int max_rows = 0;
    for (const StencilConsumer &c : consumers) {
        max_delay = std::max(max_delay, c.delay_cycles);
        max_rows = std::max(max_rows, c.window_rows);
    }
    plan.shared_bytes =
        max_delay + static_cast<double>(max_rows) * width;

    // Replicated SBs: consumers whose delays sit within a few lines of
    // each other share one SB (FD and IF both tap the pixel stream at
    // production time, Fig. 13); each later group re-reads the image
    // from DRAM and carries only its own window lines (Fig. 14).
    std::vector<StencilConsumer> sorted = consumers;
    std::sort(sorted.begin(), sorted.end(),
              [](const StencilConsumer &a, const StencilConsumer &b) {
                  return a.delay_cycles < b.delay_cycles;
              });
    const double group_gap = 16.0 * width; // "nearby" = within 16 lines
    double total = 0.0;
    int groups = 0;
    size_t i = 0;
    while (i < sorted.size()) {
        double group_start = sorted[i].delay_cycles;
        int rows = 0;
        while (i < sorted.size() &&
               sorted[i].delay_cycles - group_start <= group_gap) {
            rows = std::max(rows, sorted[i].window_rows);
            ++i;
        }
        total += static_cast<double>(rows) * width;
        ++groups;
    }
    plan.replicated_bytes = total;
    plan.extra_dram_reads = static_cast<double>(groups - 1) *
                            static_cast<double>(width) * height;
    plan.replication_wins = plan.replicated_bytes < plan.shared_bytes;
    return plan;
}

std::vector<StencilConsumer>
frontendStencilConsumers(const AcceleratorConfig &cfg)
{
    const double pixels = static_cast<double>(cfg.image_width) *
                          cfg.image_height;
    return {
        // IF: 7x7 separable Gaussian, consumes pixels as they stream.
        {"IF", 7, 7.0 * cfg.image_width},
        // FD: FAST ring needs a 7-line window, also immediate.
        {"FD", 7, 7.0 * cfg.image_width},
        // DR: block matching re-reads the raw image after FD/FC/MO have
        // completed - several million cycles later for 720p streams
        // (Sec. VII-D: "a pixel would stay in the SB for over 3 million
        // cycles").
        {"DR", 9, 3.5 * pixels},
    };
}

} // namespace edx
