/**
 * @file
 * Stencil-buffer sizing model (Sec. V-C, Figs. 13-14).
 *
 * A stencil buffer (SB) is a chain of line FIFOs feeding shift
 * registers. Its size is dictated by the production-to-consumption
 * distance of a pixel: if a pixel enters at cycle P and is consumed by
 * two operations at cycles C1 and C2, a shared SB needs
 * max(C1, C2) - P entries. When the consumers are far apart (IF/FD
 * consume a pixel immediately; DR consumes the same image millions of
 * cycles later), replicating the pixel into two SBs - at the cost of a
 * second DRAM read - shrinks total on-chip storage from (C2 - P) to
 * (C1 - P) + (C2 - P2), where P2 is the cycle of the second read just
 * before DR.
 *
 * This module computes both layouts so the ablation bench can reproduce
 * the "~9 MB without the optimization" observation of Sec. VII-D.
 */
#pragma once

#include <string>
#include <vector>

#include "hw/config.hpp"

namespace edx {

/** One stencil consumer of an image stream. */
struct StencilConsumer
{
    std::string name;
    int window_rows;        //!< stencil height (lines that must be live)
    double delay_cycles;    //!< consumption delay after pixel production
};

/** Sizing result for one image stream. */
struct StencilPlan
{
    double shared_bytes = 0.0;     //!< single shared SB
    double replicated_bytes = 0.0; //!< per-consumer SBs (Fig. 14)
    double extra_dram_reads = 0.0; //!< pixels re-read under replication
    bool replication_wins = false;
};

/**
 * Sizes the stencil buffering of one image stream.
 *
 * Consumers whose delays are within a few lines of each other share a
 * replicated SB (like FD and IF in Fig. 13); each group beyond the
 * first re-reads the full image from DRAM (Fig. 14).
 *
 * @param width image width in pixels (one byte per pixel)
 * @param height image height in pixels
 * @param consumers stencil consumers ordered by delay
 */
StencilPlan planStencilBuffers(int width, int height,
                               const std::vector<StencilConsumer> &consumers);

/**
 * The frontend's stencil consumers for a platform: IF and FD consume
 * pixels as they stream in; DR re-reads the raw image after MO has
 * produced candidate matches (a delay of roughly one full image plus
 * the MO stage).
 */
std::vector<StencilConsumer> frontendStencilConsumers(
    const AcceleratorConfig &cfg);

} // namespace edx
