/**
 * @file
 * Internal SIMD row-primitive helpers shared by the blocked MatX
 * kernels (blas.cpp) and the blocked decompositions (decomp.cpp).
 *
 * Each primitive carries an SSE2 baseline inline here plus an AVX2
 * tier (math/simd_avx2.cpp, separate -mavx2 -mfma TU) selected through
 * the runtime dispatch in math/cpu_features.hpp — so the blocked
 * Cholesky/QR/LU inner loops and the triangular solves pick up the
 * wider tier without any change of their own.
 *
 * Contract notes the callers rely on (they hold at every tier):
 *  - axpyRow and scaleRow preserve the per-element operation order of
 *    their scalar loops (lane-parallel, no reassociation, no FMA), so
 *    kernels built purely from them stay bit-exact with scalar
 *    references — and bit-exact across tiers.
 *  - dotRows reduces with multiple accumulator lanes and therefore
 *    reassociates (the AVX2 tier also contracts with FMA); kernels
 *    using it carry a bounded (not bit-exact) equivalence contract,
 *    golden-tested per tier. Its value is deterministic per
 *    (input, length, tier).
 */
#pragma once

#include <cstddef>

#include "math/cpu_features.hpp"
#if defined(EDX_HAVE_AVX2)
#include "math/simd_avx2.hpp"
#endif

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace edx {
namespace detail {

/** Dot product of two contiguous rows (two accumulator lanes). */
inline double
dotRows(const double *x, const double *y, int n)
{
#if defined(EDX_HAVE_AVX2)
    if (simdTierIsAvx2())
        return avx2::dotRows(x, y, n);
#endif
#if defined(__SSE2__)
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        acc0 = _mm_add_pd(acc0, _mm_mul_pd(_mm_loadu_pd(x + i),
                                           _mm_loadu_pd(y + i)));
        acc1 = _mm_add_pd(acc1, _mm_mul_pd(_mm_loadu_pd(x + i + 2),
                                           _mm_loadu_pd(y + i + 2)));
    }
    acc0 = _mm_add_pd(acc0, acc1);
    double lanes[2];
    _mm_storeu_pd(lanes, acc0);
    double s = lanes[0] + lanes[1];
    for (; i < n; ++i)
        s += x[i] * y[i];
    return s;
#else
    double s0 = 0.0, s1 = 0.0;
    int i = 0;
    for (; i + 2 <= n; i += 2) {
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
    }
    double s = s0 + s1;
    for (; i < n; ++i)
        s += x[i] * y[i];
    return s;
#endif
}

/** out[0..n) += a * row[0..n), order-preserving. */
inline void
axpyRow(double a, const double *row, double *out, int n)
{
#if defined(EDX_HAVE_AVX2)
    if (simdTierIsAvx2()) {
        avx2::axpyRow(a, row, out, n);
        return;
    }
#endif
#if defined(__SSE2__)
    const __m128d va = _mm_set1_pd(a);
    int j = 0;
    for (; j + 2 <= n; j += 2) {
        __m128d v = _mm_loadu_pd(out + j);
        v = _mm_add_pd(v, _mm_mul_pd(va, _mm_loadu_pd(row + j)));
        _mm_storeu_pd(out + j, v);
    }
    for (; j < n; ++j)
        out[j] += a * row[j];
#else
    for (int j = 0; j < n; ++j)
        out[j] += a * row[j];
#endif
}

/** out[0..n) *= a, order-preserving. */
inline void
scaleRow(double a, double *out, int n)
{
#if defined(EDX_HAVE_AVX2)
    if (simdTierIsAvx2()) {
        avx2::scaleRow(a, out, n);
        return;
    }
#endif
#if defined(__SSE2__)
    const __m128d va = _mm_set1_pd(a);
    int j = 0;
    for (; j + 2 <= n; j += 2)
        _mm_storeu_pd(out + j, _mm_mul_pd(va, _mm_loadu_pd(out + j)));
    for (; j < n; ++j)
        out[j] *= a;
#else
    for (int j = 0; j < n; ++j)
        out[j] *= a;
#endif
}

/** out[0..n) /= a, order-preserving (division, not reciprocal). */
inline void
divRow(double a, double *out, int n)
{
#if defined(EDX_HAVE_AVX2)
    if (simdTierIsAvx2()) {
        avx2::divRow(a, out, n);
        return;
    }
#endif
#if defined(__SSE2__)
    const __m128d va = _mm_set1_pd(a);
    int j = 0;
    for (; j + 2 <= n; j += 2)
        _mm_storeu_pd(out + j, _mm_div_pd(_mm_loadu_pd(out + j), va));
    for (; j < n; ++j)
        out[j] /= a;
#else
    for (int j = 0; j < n; ++j)
        out[j] /= a;
#endif
}

} // namespace detail
} // namespace edx
