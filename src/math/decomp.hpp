/**
 * @file
 * Matrix decompositions and triangular solvers.
 *
 * These routines are the software realizations of the five backend
 * accelerator building blocks of the paper (Tbl. I): multiplication
 * (blas.hpp), decomposition, inverse, transpose, and forward/backward
 * substitution. The Kalman-gain and marginalization kernels call
 * directly into them, so the kernel-to-primitive decomposition the
 * paper reports is literal in this codebase.
 *
 * Since the backend linear-algebra overhaul the solvers follow the
 * frontend's optimization contract:
 *
 *  - Every class has a default constructor plus a `compute()` that
 *    reuses its internal storage, so a workspace-owned solver performs
 *    no heap allocation once warm.
 *  - Cholesky and HouseholderQR factor in cache-blocked panels with
 *    SSE2 row primitives; CholeskyReference and HouseholderQRReference
 *    retain the scalar seed algorithms and are golden-tested against
 *    the blocked versions over the MSCKF-realistic size grid
 *    (tests/test_math.cpp). PartialPivLU's vectorized trailing update
 *    is order-preserving and therefore bit-exact with the seed.
 *  - Multi-right-hand-side solves run row-oriented and in place
 *    (`solveInto` / `solveInPlace`): no per-column VecX temporaries,
 *    no transposes.
 */
#pragma once

#include <optional>

#include "math/matx.hpp"

namespace edx {

/**
 * Cholesky factorization A = L * L^T of a symmetric positive-definite
 * matrix (cache-blocked left-looking panels).
 */
class Cholesky
{
  public:
    Cholesky() = default;

    /** Convenience: factorizes @p a on construction. */
    explicit Cholesky(const MatX &a) { compute(a); }

    /**
     * Factorizes @p a, reusing internal storage. On failure (non-SPD
     * input) returns false, ok() returns false, and the solver must
     * not be used.
     */
    bool compute(const MatX &a);

    /** @return true when the factorization succeeded. */
    bool ok() const { return ok_; }

    /** Lower-triangular factor L. */
    const MatX &matrixL() const { return l_; }

    /** Solves A x = b via forward then backward substitution. */
    VecX solve(const VecX &b) const;

    /** Solves A X = B (row-oriented, single pass). */
    MatX solve(const MatX &b) const;

    /** In-place vector solve: b <- A^{-1} b. */
    void solveInPlace(VecX &b) const;

    /**
     * In-place multi-RHS solve: B <- A^{-1} B, row-oriented with no
     * temporaries (the Kalman-gain K^T solve path).
     */
    void solveInPlace(MatX &b) const;

    /** log(det(A)) = 2 * sum(log(diag(L))); requires ok(). */
    double logDeterminant() const;

    /** Internal storage capacity (workspace accounting). */
    size_t capacityBytes() const { return l_.capacityBytes(); }

  private:
    MatX l_;
    bool ok_ = false;
};

/**
 * Retained scalar Cholesky (the seed algorithm): the `*Reference` twin
 * of the blocked Cholesky under the backend equivalence contract.
 */
class CholeskyReference
{
  public:
    CholeskyReference() = default;
    explicit CholeskyReference(const MatX &a) { compute(a); }

    bool compute(const MatX &a);
    bool ok() const { return ok_; }
    const MatX &matrixL() const { return l_; }
    VecX solve(const VecX &b) const;
    MatX solve(const MatX &b) const; //!< column-by-column (seed path)

  private:
    MatX l_;
    bool ok_ = false;
};

/**
 * LU factorization with partial pivoting, P * A = L * U.
 *
 * Used for general (possibly indefinite) square systems and for matrix
 * inversion. The vectorized trailing update preserves the scalar
 * operation order (bit-exact with the seed implementation).
 */
class PartialPivLU
{
  public:
    PartialPivLU() = default;
    explicit PartialPivLU(const MatX &a) { compute(a); }

    /** Factorizes @p a, reusing internal storage. */
    bool compute(const MatX &a);

    /** @return true when A was non-singular to working precision. */
    bool ok() const { return ok_; }

    /** Solves A x = b. */
    VecX solve(const VecX &b) const;

    /** Solves A X = B. */
    MatX solve(const MatX &b) const;

    /** Solves A x = b into @p x (no temporaries). */
    void solveInto(const VecX &b, VecX &x) const;

    /** Solves A X = B into @p x, row-oriented (no temporaries). */
    void solveInto(const MatX &b, MatX &x) const;

    /** Computes A^{-1}. */
    MatX inverse() const;

    /** Determinant of A. */
    double determinant() const;

    /** Internal storage capacity (workspace accounting). */
    size_t
    capacityBytes() const
    {
        return lu_.capacityBytes() + perm_.capacity() * sizeof(int);
    }

  private:
    MatX lu_;               //!< packed L (unit diagonal) and U
    std::vector<int> perm_; //!< row permutation
    int sign_ = 1;
    bool ok_ = false;
};

/**
 * Householder QR factorization A = Q * R (A is m x n with m >= n),
 * cache-blocked with the compact-WY representation: panels of
 * reflectors are applied to the trailing matrix as two matrix products
 * instead of one rank-1 update per reflector.
 *
 * The MSCKF measurement-compression step (the "QR" slice of the VIO
 * latency breakdown, Fig. 7) uses this class.
 */
class HouseholderQR
{
  public:
    HouseholderQR() = default;
    explicit HouseholderQR(const MatX &a) { compute(a); }

    /** Factorizes @p a, reusing internal storage. */
    void compute(const MatX &a);

    /**
     * The upper-triangular factor R (n x n, thin form). Materialized
     * lazily on first call — the hot paths use extractRInto() /
     * solveUpperInto() against the packed factorization and never pay
     * this copy.
     */
    const MatX &matrixR() const;

    /** Writes R (n x n, zero lower triangle) into @p r_out. */
    void extractRInto(MatX &r_out) const;

    /** Computes Q^T * b (length m in, length m out). */
    VecX qtb(const VecX &b) const;

    /** Computes Q^T * B applied to each column. */
    MatX qtb(const MatX &b) const;

    /** In-place Q^T application: b <- Q^T b (no temporaries). */
    void qtbInPlace(VecX &b) const;

    /**
     * In-place Q^T application on a matrix, row-oriented: two passes
     * per reflector over the rows of @p b (no column temporaries).
     */
    void qtbInPlace(MatX &b) const;

    /** Solves the least-squares problem min ||A x - b||. */
    VecX solve(const VecX &b) const;

    /**
     * Back-substitutes R x = y for the top n rows of @p y into @p x
     * directly from the packed factorization (no matrixR() copy).
     * Singular diagonal entries yield zero components (minimum-norm
     * convention of the seed solver).
     */
    void solveUpperInto(const VecX &y, VecX &x) const;

    /** Numerical rank of R with tolerance @p tol on the diagonal. */
    int rank(double tol = 1e-10) const;

    /** Internal storage capacity (workspace accounting). */
    size_t
    capacityBytes() const
    {
        return qr_.capacityBytes() + t_.capacityBytes() +
               z_.capacityBytes() + w_.capacityBytes() +
               r_.capacityBytes() + beta_.capacity() * sizeof(double);
    }

  private:
    void factorPanel(int p0, int p1);
    void applyPanelToTrailing(int p0, int p1);
    void applyHouseholder(VecX &b) const;

    MatX qr_;                  //!< packed Householder vectors + R
    std::vector<double> beta_;
    MatX t_;                   //!< compact-WY T of the current panel
    VecX z_;                   //!< V^T v scratch of the T recurrence
    mutable MatX w_;           //!< V^T B scratch (reused by qtbInPlace)
    mutable MatX r_;           //!< lazily materialized thin R
    mutable bool r_valid_ = false;
    int m_ = 0, n_ = 0;
};

/**
 * Retained scalar Householder QR (the seed algorithm): the
 * `*Reference` twin of the blocked HouseholderQR.
 */
class HouseholderQRReference
{
  public:
    HouseholderQRReference() = default;
    explicit HouseholderQRReference(const MatX &a) { compute(a); }

    void compute(const MatX &a);
    const MatX &matrixR() const { return r_; }
    VecX qtb(const VecX &b) const;
    MatX qtb(const MatX &b) const; //!< column-by-column (seed path)
    VecX solve(const VecX &b) const;
    int rank(double tol = 1e-10) const;

  private:
    void applyHouseholder(VecX &b) const;

    MatX qr_;
    std::vector<double> beta_;
    MatX r_;
    int m_ = 0, n_ = 0;
};

/**
 * Solves L x = b by forward substitution (L lower-triangular,
 * taken from the lower triangle of @p l including its diagonal).
 */
VecX forwardSubstitute(const MatX &l, const VecX &b);

/** Solves L X = B by forward substitution (row-oriented). */
MatX forwardSubstitute(const MatX &l, const MatX &b);

/** Row-oriented forward substitution into @p x (no temporaries). */
void forwardSubstituteInto(const MatX &l, const MatX &b, MatX &x);

/** Solves U x = b by backward substitution (U upper-triangular). */
VecX backwardSubstitute(const MatX &u, const VecX &b);

/** Solves U X = B by backward substitution (row-oriented). */
MatX backwardSubstitute(const MatX &u, const MatX &b);

/** Row-oriented backward substitution into @p x (no temporaries). */
void backwardSubstituteInto(const MatX &u, const MatX &b, MatX &x);

/**
 * Solves the SPD system A X = B via Cholesky; falls back to LU when the
 * Cholesky factorization fails (e.g., A only positive semi-definite due
 * to round-off). Returns std::nullopt when the system is singular.
 */
std::optional<MatX> solveSpd(const MatX &a, const MatX &b);

/** Vector right-hand-side overload of solveSpd. */
std::optional<VecX> solveSpd(const MatX &a, const VecX &b);

/**
 * Inverse of a symmetric matrix with the marginalization block structure
 * [A B; B^T D] where A is diagonal (landmark part) and D is the small
 * dense pose part, computed via the Schur complement of A.
 *
 * This mirrors the specialized inversion hardware of Sec. VI-A ("the
 * inversion hardware is specialized for a 6x6 matrix inversion combined
 * with simple reciprocal structures"). @p diag_n is the size of the
 * diagonal part A.
 */
std::optional<MatX> invertBlockDiagonalSymmetric(const MatX &m, int diag_n);

} // namespace edx
