/**
 * @file
 * Matrix decompositions and triangular solvers.
 *
 * These routines are the software realizations of the five backend
 * accelerator building blocks of the paper (Tbl. I): multiplication
 * (matx.hpp), decomposition, inverse, transpose, and forward/backward
 * substitution. The Kalman-gain and marginalization kernels call directly
 * into them, so the kernel-to-primitive decomposition the paper reports
 * is literal in this codebase.
 */
#pragma once

#include <optional>

#include "math/matx.hpp"

namespace edx {

/**
 * Cholesky factorization A = L * L^T of a symmetric positive-definite
 * matrix.
 */
class Cholesky
{
  public:
    /**
     * Factorizes @p a. On failure (non-SPD input), ok() returns false and
     * the solver must not be used.
     */
    explicit Cholesky(const MatX &a);

    /** @return true when the factorization succeeded. */
    bool ok() const { return ok_; }

    /** Lower-triangular factor L. */
    const MatX &matrixL() const { return l_; }

    /** Solves A x = b via forward then backward substitution. */
    VecX solve(const VecX &b) const;

    /** Solves A X = B column-by-column. */
    MatX solve(const MatX &b) const;

    /** log(det(A)) = 2 * sum(log(diag(L))); requires ok(). */
    double logDeterminant() const;

  private:
    MatX l_;
    bool ok_ = false;
};

/**
 * LU factorization with partial pivoting, P * A = L * U.
 *
 * Used for general (possibly indefinite) square systems and for matrix
 * inversion.
 */
class PartialPivLU
{
  public:
    explicit PartialPivLU(const MatX &a);

    /** @return true when A was non-singular to working precision. */
    bool ok() const { return ok_; }

    /** Solves A x = b. */
    VecX solve(const VecX &b) const;

    /** Solves A X = B. */
    MatX solve(const MatX &b) const;

    /** Computes A^{-1}. */
    MatX inverse() const;

    /** Determinant of A. */
    double determinant() const;

  private:
    MatX lu_;               //!< packed L (unit diagonal) and U
    std::vector<int> perm_; //!< row permutation
    int sign_ = 1;
    bool ok_ = false;
};

/**
 * Householder QR factorization A = Q * R (A is m x n with m >= n).
 *
 * The MSCKF measurement-compression step (the "QR" slice of the VIO
 * latency breakdown, Fig. 7) uses this class.
 */
class HouseholderQR
{
  public:
    explicit HouseholderQR(const MatX &a);

    /** The upper-triangular factor R (n x n, thin form). */
    const MatX &matrixR() const { return r_; }

    /** Computes Q^T * b (length m in, length m out). */
    VecX qtb(const VecX &b) const;

    /** Computes Q^T * B applied to each column. */
    MatX qtb(const MatX &b) const;

    /** Solves the least-squares problem min ||A x - b||. */
    VecX solve(const VecX &b) const;

    /** Numerical rank of R with tolerance @p tol on the diagonal. */
    int rank(double tol = 1e-10) const;

  private:
    void applyHouseholder(VecX &b) const;

    MatX qr_;            //!< packed Householder vectors + R
    std::vector<double> beta_;
    MatX r_;
    int m_ = 0, n_ = 0;
};

/**
 * Solves L x = b by forward substitution (L lower-triangular,
 * taken from the lower triangle of @p l including its diagonal).
 */
VecX forwardSubstitute(const MatX &l, const VecX &b);

/** Solves L X = B column-wise by forward substitution. */
MatX forwardSubstitute(const MatX &l, const MatX &b);

/** Solves U x = b by backward substitution (U upper-triangular). */
VecX backwardSubstitute(const MatX &u, const VecX &b);

/** Solves U X = B column-wise by backward substitution. */
MatX backwardSubstitute(const MatX &u, const MatX &b);

/**
 * Solves the SPD system A X = B via Cholesky; falls back to LU when the
 * Cholesky factorization fails (e.g., A only positive semi-definite due
 * to round-off). Returns std::nullopt when the system is singular.
 */
std::optional<MatX> solveSpd(const MatX &a, const MatX &b);

/** Vector right-hand-side overload of solveSpd. */
std::optional<VecX> solveSpd(const MatX &a, const VecX &b);

/**
 * Inverse of a symmetric matrix with the marginalization block structure
 * [A B; B^T D] where A is diagonal (landmark part) and D is the small
 * dense pose part, computed via the Schur complement of A.
 *
 * This mirrors the specialized inversion hardware of Sec. VI-A ("the
 * inversion hardware is specialized for a 6x6 matrix inversion combined
 * with simple reciprocal structures"). @p diag_n is the size of the
 * diagonal part A.
 */
std::optional<MatX> invertBlockDiagonalSymmetric(const MatX &m, int diag_n);

} // namespace edx
