/**
 * @file
 * Descriptive statistics used by the characterization benches.
 *
 * The paper reports means, standard deviations, relative standard
 * deviation (RSD, Fig. 5), RMSE (Fig. 3), percentiles of per-frame
 * latency (Figs. 9-11), and the coefficient of determination R^2 of the
 * scheduler's regression models (Sec. VII-F). All of these live here.
 */
#pragma once

#include <vector>

namespace edx {

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than 2 samples. */
double stddev(const std::vector<double> &xs);

/**
 * Relative standard deviation (coefficient of variation) in percent:
 * 100 * stddev / mean. Returns 0 when the mean is 0.
 */
double rsdPercent(const std::vector<double> &xs);

/** Root mean square of the values themselves. */
double rms(const std::vector<double> &xs);

/** Root-mean-square error between two equally sized series. */
double rmse(const std::vector<double> &a, const std::vector<double> &b);

/** Minimum; 0 for empty input. */
double minValue(const std::vector<double> &xs);

/** Maximum; 0 for empty input. */
double maxValue(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile, @p p in [0, 100].
 * Returns 0 for empty input.
 */
double percentile(std::vector<double> xs, double p);

/**
 * Coefficient of determination R^2 of predictions @p pred against
 * observations @p obs.
 */
double rSquared(const std::vector<double> &obs,
                const std::vector<double> &pred);

/** Summary bundle used by bench result tables. */
struct Summary
{
    double mean = 0.0;
    double sd = 0.0;
    double rsd_percent = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    int count = 0;
};

/** Computes the full Summary of a series. */
Summary summarize(const std::vector<double> &xs);

} // namespace edx
