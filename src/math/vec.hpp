/**
 * @file
 * Fixed-size dense vectors used throughout the Eudoxus framework.
 *
 * These are deliberately small, allocation-free value types: the
 * localization hot path (feature geometry, filter states, pose math)
 * manipulates 2-, 3- and 4-vectors millions of times per run.
 */
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <ostream>

namespace edx {

/**
 * Fixed-size column vector of doubles.
 *
 * @tparam N compile-time dimension (N >= 1)
 */
template <int N>
class Vec
{
    static_assert(N >= 1, "Vec dimension must be positive");

  public:
    /** Value-initializes all elements to zero. */
    Vec() : d_{} {}

    /** Constructs from an explicit element list; must supply N values. */
    Vec(std::initializer_list<double> vals)
    {
        assert(static_cast<int>(vals.size()) == N);
        int i = 0;
        for (double v : vals)
            d_[i++] = v;
    }

    /** Returns a vector with every element equal to @p v. */
    static Vec
    constant(double v)
    {
        Vec r;
        for (int i = 0; i < N; ++i)
            r.d_[i] = v;
        return r;
    }

    /** Returns the zero vector. */
    static Vec zero() { return Vec(); }

    /** Returns the i-th canonical basis vector. */
    static Vec
    unit(int i)
    {
        Vec r;
        r[i] = 1.0;
        return r;
    }

    double &
    operator[](int i)
    {
        assert(i >= 0 && i < N);
        return d_[i];
    }

    double
    operator[](int i) const
    {
        assert(i >= 0 && i < N);
        return d_[i];
    }

    /** Compile-time dimension. */
    static constexpr int size() { return N; }

    double x() const { return d_[0]; }
    double y() const { static_assert(N >= 2); return d_[1]; }
    double z() const { static_assert(N >= 3); return d_[2]; }
    double w() const { static_assert(N >= 4); return d_[3]; }

    Vec
    operator+(const Vec &o) const
    {
        Vec r;
        for (int i = 0; i < N; ++i)
            r.d_[i] = d_[i] + o.d_[i];
        return r;
    }

    Vec
    operator-(const Vec &o) const
    {
        Vec r;
        for (int i = 0; i < N; ++i)
            r.d_[i] = d_[i] - o.d_[i];
        return r;
    }

    Vec
    operator-() const
    {
        Vec r;
        for (int i = 0; i < N; ++i)
            r.d_[i] = -d_[i];
        return r;
    }

    Vec
    operator*(double s) const
    {
        Vec r;
        for (int i = 0; i < N; ++i)
            r.d_[i] = d_[i] * s;
        return r;
    }

    Vec operator/(double s) const { return *this * (1.0 / s); }

    Vec &
    operator+=(const Vec &o)
    {
        for (int i = 0; i < N; ++i)
            d_[i] += o.d_[i];
        return *this;
    }

    Vec &
    operator-=(const Vec &o)
    {
        for (int i = 0; i < N; ++i)
            d_[i] -= o.d_[i];
        return *this;
    }

    Vec &
    operator*=(double s)
    {
        for (int i = 0; i < N; ++i)
            d_[i] *= s;
        return *this;
    }

    /** Inner product. */
    double
    dot(const Vec &o) const
    {
        double s = 0.0;
        for (int i = 0; i < N; ++i)
            s += d_[i] * o.d_[i];
        return s;
    }

    /** Squared Euclidean norm. */
    double squaredNorm() const { return dot(*this); }

    /** Euclidean norm. */
    double norm() const { return std::sqrt(squaredNorm()); }

    /** Returns this vector scaled to unit length (asserts norm > 0). */
    Vec
    normalized() const
    {
        double n = norm();
        assert(n > 0.0);
        return *this / n;
    }

    /** Element-wise (Hadamard) product. */
    Vec
    cwiseProduct(const Vec &o) const
    {
        Vec r;
        for (int i = 0; i < N; ++i)
            r.d_[i] = d_[i] * o.d_[i];
        return r;
    }

    /** Returns the first M elements as a smaller vector. */
    template <int M>
    Vec<M>
    head() const
    {
        static_assert(M <= N);
        Vec<M> r;
        for (int i = 0; i < M; ++i)
            r[i] = d_[i];
        return r;
    }

    const double *data() const { return d_.data(); }
    double *data() { return d_.data(); }

  private:
    std::array<double, N> d_;
};

template <int N>
inline Vec<N>
operator*(double s, const Vec<N> &v)
{
    return v * s;
}

/** 3-D cross product. */
inline Vec<3>
cross(const Vec<3> &a, const Vec<3> &b)
{
    return Vec<3>{a[1] * b[2] - a[2] * b[1],
                  a[2] * b[0] - a[0] * b[2],
                  a[0] * b[1] - a[1] * b[0]};
}

template <int N>
inline std::ostream &
operator<<(std::ostream &os, const Vec<N> &v)
{
    os << "[";
    for (int i = 0; i < N; ++i)
        os << (i ? ", " : "") << v[i];
    return os << "]";
}

using Vec2 = Vec<2>;
using Vec3 = Vec<3>;
using Vec4 = Vec<4>;
using Vec6 = Vec<6>;

/** Converts a 3-vector to homogeneous coordinates. */
inline Vec4
homogeneous(const Vec3 &v)
{
    return Vec4{v[0], v[1], v[2], 1.0};
}

} // namespace edx
