#include "math/regression.hpp"

#include <cassert>
#include <cmath>

#include "math/decomp.hpp"
#include "math/stats.hpp"

namespace edx {

PolynomialModel
PolynomialModel::fit(const std::vector<double> &xs,
                     const std::vector<double> &ys, int degree)
{
    assert(xs.size() == ys.size());
    assert(degree >= 0);
    const int n = static_cast<int>(xs.size());
    const int k = degree + 1;
    assert(n >= k);

    // Vandermonde least squares via QR for numerical robustness.
    MatX a(n, k);
    VecX b(n);
    for (int i = 0; i < n; ++i) {
        double p = 1.0;
        for (int j = 0; j < k; ++j) {
            a(i, j) = p;
            p *= xs[i];
        }
        b[i] = ys[i];
    }
    HouseholderQR qr(a);
    VecX c = qr.solve(b);
    std::vector<double> coeffs(k);
    for (int j = 0; j < k; ++j)
        coeffs[j] = c[j];
    return PolynomialModel(std::move(coeffs));
}

double
PolynomialModel::predict(double x) const
{
    // Horner evaluation.
    double y = 0.0;
    for (int i = static_cast<int>(coeffs_.size()) - 1; i >= 0; --i)
        y = y * x + coeffs_[i];
    return y;
}

std::vector<double>
PolynomialModel::predict(const std::vector<double> &xs) const
{
    std::vector<double> ys;
    ys.reserve(xs.size());
    for (double x : xs)
        ys.push_back(predict(x));
    return ys;
}

double
PolynomialModel::r2(const std::vector<double> &xs,
                    const std::vector<double> &ys) const
{
    return rSquared(ys, predict(xs));
}

} // namespace edx
