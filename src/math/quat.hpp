/**
 * @file
 * Unit quaternions and SO(3) utilities.
 *
 * The localization backend represents orientation as a Hamilton unit
 * quaternion (w, x, y, z). Small-angle exponential/logarithm maps are
 * used by IMU integration (MSCKF propagation) and by the rotation
 * parameterization of bundle adjustment.
 */
#pragma once

#include <cmath>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace edx {

/** Hamilton unit quaternion representing a rotation. */
class Quat
{
  public:
    /** Identity rotation. */
    Quat() : w_(1.0), x_(0.0), y_(0.0), z_(0.0) {}

    Quat(double w, double x, double y, double z)
        : w_(w), x_(x), y_(y), z_(z)
    {}

    /** Identity rotation. */
    static Quat identity() { return Quat(); }

    /** Rotation of @p angle_rad radians about unit @p axis. */
    static Quat fromAxisAngle(const Vec3 &axis, double angle_rad);

    /**
     * Exponential map: converts a rotation vector (axis * angle) to a
     * quaternion; accurate for small angles.
     */
    static Quat exp(const Vec3 &rotvec);

    /** Constructs from a (proper) rotation matrix. */
    static Quat fromRotationMatrix(const Mat3 &r);

    /** Yaw-pitch-roll (Z-Y-X) Euler angle constructor, radians. */
    static Quat fromYawPitchRoll(double yaw, double pitch, double roll);

    double w() const { return w_; }
    double x() const { return x_; }
    double y() const { return y_; }
    double z() const { return z_; }

    /** Hamilton product (this ∘ o: rotate by o first, then this). */
    Quat operator*(const Quat &o) const;

    /** Conjugate; equals the inverse for unit quaternions. */
    Quat conjugate() const { return Quat(w_, -x_, -y_, -z_); }

    /** Inverse rotation (assumes unit norm). */
    Quat inverse() const { return conjugate(); }

    double norm() const
    {
        return std::sqrt(w_ * w_ + x_ * x_ + y_ * y_ + z_ * z_);
    }

    /** Returns the unit-norm version of this quaternion (w kept >= 0). */
    Quat normalized() const;

    /** Rotates a 3-vector. */
    Vec3 rotate(const Vec3 &v) const;

    /** Converts to a 3x3 rotation matrix. */
    Mat3 toRotationMatrix() const;

    /** Logarithm map: rotation vector (axis * angle) of this rotation. */
    Vec3 log() const;

    /**
     * Geodesic distance to another rotation, in radians
     * (the magnitude of log(this^{-1} * o)).
     */
    double angularDistance(const Quat &o) const;

    /**
     * Integrates a body angular velocity over @p dt:
     * q(t+dt) = q(t) ∘ exp(omega * dt).
     */
    Quat integrated(const Vec3 &omega, double dt) const;

  private:
    double w_, x_, y_, z_;
};

/**
 * Right Jacobian of SO(3) at rotation vector @p phi.
 *
 * Used when propagating orientation covariance through the IMU
 * integration step.
 */
Mat3 so3RightJacobian(const Vec3 &phi);

} // namespace edx
