/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element of the framework (sensor noise, world
 * generation, descriptor sampling patterns) draws from this PCG32-based
 * generator so that all tests and benchmark runs are reproducible
 * bit-for-bit from a seed.
 */
#pragma once

#include <cmath>
#include <cstdint>

namespace edx {

/** PCG32 pseudo-random generator (O'Neill, 2014). */
class Rng
{
  public:
    /** Seeds the generator; distinct streams per @p seq. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t seq = 1)
        : state_(0), inc_((seq << 1u) | 1u)
    {
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** Uniform 32-bit value. */
    uint32_t
    nextU32()
    {
        uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
        uint32_t rot = static_cast<uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Uniform in [0, 1). */
    double
    uniform()
    {
        return nextU32() * (1.0 / 4294967296.0);
    }

    /** Uniform in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    uniformInt(int lo, int hi)
    {
        return lo + static_cast<int>(nextU32() %
                                     static_cast<uint32_t>(hi - lo + 1));
    }

    /** Standard normal via Box-Muller. */
    double
    gaussian()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u1, u2;
        do {
            u1 = uniform();
        } while (u1 <= 1e-12);
        u2 = uniform();
        double mag = std::sqrt(-2.0 * std::log(u1));
        spare_ = mag * std::sin(6.283185307179586 * u2);
        have_spare_ = true;
        return mag * std::cos(6.283185307179586 * u2);
    }

    /** Normal with mean @p mu and standard deviation @p sigma. */
    double
    gaussian(double mu, double sigma)
    {
        return mu + sigma * gaussian();
    }

  private:
    uint64_t state_;
    uint64_t inc_;
    double spare_ = 0.0;
    bool have_spare_ = false;
};

} // namespace edx
