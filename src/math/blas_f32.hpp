/**
 * @file
 * Float32 kernels for the mixed-precision MSCKF covariance update.
 *
 * The Kalman-gain slice of the VIO backend (S = H P Hᵀ + R, the SPD
 * solve for Kᵀ, and the covariance downdate term (H P)ᵀ Kᵀ) is the
 * covariance-heavy half of the frame; running it in float32 halves the
 * memory traffic and doubles the SIMD lane count. These kernels
 * operate on packed row-major float buffers the backend workspace owns
 * (MsckfConfig::float32_covariance_update packs the f64 state down,
 * runs the slice in f32, and applies the results back to the f64
 * master covariance).
 *
 * Equivalence contract: this path is NOT bit-exact with the float64
 * kernels and has no bit-exact twin. Its contract is the documented
 * pose-divergence bound against the f64 path over an MSCKF-realistic
 * run (tests/test_backend.cpp, Float32CovarianceTracksFloat64Path) —
 * the mixed-precision analogue of the reference-twin golden tests.
 * The SSE2 baseline and the AVX2 tier of *these* kernels are likewise
 * only bound-equivalent (both reassociate; the AVX2 tier also uses
 * FMA).
 */
#pragma once

#include <vector>

#include "math/aligned_alloc.hpp"
#include "math/matx.hpp"

namespace edx {
namespace f32 {

/** Packs a MatX into a row-major float buffer (resized to r*c). */
void pack(const MatX &src, AlignedVector<float> &dst);

/**
 * hp = h · p and s = lower triangle of hp · hᵀ (not mirrored; the
 * consumers only read the lower triangle). h is r x d, p is d x d
 * symmetric, hp is r x d, s is r x r. hp and s are resized.
 */
void sandwich(const float *h, const float *p, int r, int d,
              AlignedVector<float> &hp, AlignedVector<float> &s);

/**
 * In-place Cholesky of the n x n matrix @p a (lower triangle read and
 * written; the upper triangle is ignored). Returns false when the
 * matrix is not numerically SPD in float32.
 */
bool choleskyLower(float *a, int n);

/**
 * Row-oriented in-place solve of (L Lᵀ) X = B for the n x nc buffer
 * @p b, with @p l the factor from choleskyLower.
 */
void choleskySolveInPlace(const float *l, int n, float *b, int nc);

/**
 * t = lower triangle of aᵀ · b for a, b of shape m x n (the covariance
 * downdate term (H P)ᵀ Kᵀ). @p t is resized to n*n and zero-filled;
 * only its lower triangle is written.
 */
void downdateTerm(const float *a, const float *b, int m, int n,
                  AlignedVector<float> &t);

} // namespace f32
} // namespace edx
