#include "math/matx.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "math/blas.hpp"

namespace edx {

VecX
VecX::operator+(const VecX &o) const
{
    assert(size() == o.size());
    VecX r(size());
    for (int i = 0; i < size(); ++i)
        r[i] = d_[i] + o.d_[i];
    return r;
}

VecX
VecX::operator-(const VecX &o) const
{
    assert(size() == o.size());
    VecX r(size());
    for (int i = 0; i < size(); ++i)
        r[i] = d_[i] - o.d_[i];
    return r;
}

VecX
VecX::operator*(double s) const
{
    VecX r(size());
    for (int i = 0; i < size(); ++i)
        r[i] = d_[i] * s;
    return r;
}

VecX &
VecX::operator+=(const VecX &o)
{
    assert(size() == o.size());
    for (int i = 0; i < size(); ++i)
        d_[i] += o.d_[i];
    return *this;
}

VecX &
VecX::operator-=(const VecX &o)
{
    assert(size() == o.size());
    for (int i = 0; i < size(); ++i)
        d_[i] -= o.d_[i];
    return *this;
}

double
VecX::dot(const VecX &o) const
{
    assert(size() == o.size());
    double s = 0.0;
    for (int i = 0; i < size(); ++i)
        s += d_[i] * o.d_[i];
    return s;
}

double
VecX::norm() const
{
    return std::sqrt(squaredNorm());
}

double
VecX::maxAbs() const
{
    double m = 0.0;
    for (double v : d_)
        m = std::max(m, std::abs(v));
    return m;
}

void
VecX::setSegment(int at, const VecX &v)
{
    assert(at >= 0 && at + v.size() <= size());
    for (int i = 0; i < v.size(); ++i)
        d_[at + i] = v[i];
}

VecX
VecX::segment(int at, int n) const
{
    assert(at >= 0 && n >= 0 && at + n <= size());
    VecX r(n);
    for (int i = 0; i < n; ++i)
        r[i] = d_[at + i];
    return r;
}

VecX
operator*(double s, const VecX &v)
{
    return v * s;
}

std::ostream &
operator<<(std::ostream &os, const VecX &v)
{
    os << "[";
    for (int i = 0; i < v.size(); ++i)
        os << (i ? ", " : "") << v[i];
    return os << "]";
}

MatX
MatX::identity(int n)
{
    MatX m(n, n);
    for (int i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

MatX
MatX::diagonal(const VecX &diag)
{
    MatX m(diag.size(), diag.size());
    for (int i = 0; i < diag.size(); ++i)
        m(i, i) = diag[i];
    return m;
}

MatX
MatX::operator+(const MatX &o) const
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    MatX r(rows_, cols_);
    for (size_t i = 0; i < d_.size(); ++i)
        r.d_[i] = d_[i] + o.d_[i];
    return r;
}

MatX
MatX::operator-(const MatX &o) const
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    MatX r(rows_, cols_);
    for (size_t i = 0; i < d_.size(); ++i)
        r.d_[i] = d_[i] - o.d_[i];
    return r;
}

MatX
MatX::operator*(double s) const
{
    MatX r(rows_, cols_);
    for (size_t i = 0; i < d_.size(); ++i)
        r.d_[i] = d_[i] * s;
    return r;
}

MatX
MatX::operator*(const MatX &o) const
{
    MatX r;
    gemmInto(*this, o, r);
    return r;
}

VecX
MatX::operator*(const VecX &v) const
{
    VecX r;
    gemvInto(*this, v, r);
    return r;
}

MatX &
MatX::operator+=(const MatX &o)
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t i = 0; i < d_.size(); ++i)
        d_[i] += o.d_[i];
    return *this;
}

MatX &
MatX::operator-=(const MatX &o)
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t i = 0; i < d_.size(); ++i)
        d_[i] -= o.d_[i];
    return *this;
}

MatX
MatX::transpose() const
{
    MatX r(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            r(j, i) = (*this)(i, j);
    return r;
}

double
MatX::norm() const
{
    double s = 0.0;
    for (double v : d_)
        s += v * v;
    return std::sqrt(s);
}

double
MatX::maxAbs() const
{
    double m = 0.0;
    for (double v : d_)
        m = std::max(m, std::abs(v));
    return m;
}

MatX
MatX::block(int r0, int c0, int nr, int nc) const
{
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_);
    MatX b(nr, nc);
    for (int r = 0; r < nr; ++r)
        for (int c = 0; c < nc; ++c)
            b(r, c) = (*this)(r0 + r, c0 + c);
    return b;
}

void
MatX::setBlock(int r0, int c0, const MatX &b)
{
    assert(r0 >= 0 && c0 >= 0 &&
           r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_);
    for (int r = 0; r < b.rows(); ++r)
        for (int c = 0; c < b.cols(); ++c)
            (*this)(r0 + r, c0 + c) = b(r, c);
}

void
MatX::resize(int r, int c)
{
    assert(r >= 0 && c >= 0);
    rows_ = r;
    cols_ = c;
    d_.assign(static_cast<size_t>(r) * c, 0.0);
}

void
MatX::resizeNoInit(int r, int c)
{
    assert(r >= 0 && c >= 0);
    rows_ = r;
    cols_ = c;
    d_.resize(static_cast<size_t>(r) * c);
}

void
MatX::setZero()
{
    std::fill(d_.begin(), d_.end(), 0.0);
}

void
MatX::conservativeResize(int r, int c)
{
    assert(r >= 0 && c >= 0);
    const int cr = std::min(r, rows_);
    const int cc = std::min(c, cols_);
    const size_t nsize = static_cast<size_t>(r) * c;

    if (c == cols_) {
        // Row count change only: the layout is already correct.
        d_.resize(nsize, 0.0);
    } else if (c > cols_) {
        // Wider rows: grow the buffer, then repack from the last row
        // backwards so a row never overwrites an unread one.
        d_.resize(nsize, 0.0);
        for (int i = cr - 1; i >= 0; --i) {
            double *dst = d_.data() + static_cast<size_t>(i) * c;
            const double *src = d_.data() + static_cast<size_t>(i) * cols_;
            if (i > 0)
                std::memmove(dst, src, sizeof(double) * cc);
            std::fill(dst + cc, dst + c, 0.0);
        }
    } else {
        // Narrower rows: repack forward, then shrink.
        for (int i = 1; i < cr; ++i) {
            double *dst = d_.data() + static_cast<size_t>(i) * c;
            const double *src = d_.data() + static_cast<size_t>(i) * cols_;
            std::memmove(dst, src, sizeof(double) * cc);
        }
        d_.resize(nsize, 0.0);
        // Narrow-but-taller: offsets of rows [cr, r) may hold stale
        // old-layout data that vector::resize did not touch.
        if (r > cr)
            std::fill(d_.begin() + static_cast<size_t>(cr) * c, d_.end(),
                      0.0);
    }
    rows_ = r;
    cols_ = c;
}

void
MatX::removeRowsAndCols(int at, int n)
{
    assert(rows_ == cols_);
    assert(at >= 0 && n >= 0 && at + n <= rows_);
    if (n == 0)
        return;
    const int nn = rows_ - n;
    // Compact in place: row r of the result is old row (r < at ? r :
    // r + n) with columns [at, at+n) dropped. Walking forward is safe
    // because every destination offset precedes its source offset.
    for (int r = 0; r < nn; ++r) {
        const int src_r = r < at ? r : r + n;
        const double *src = d_.data() + static_cast<size_t>(src_r) * cols_;
        double *dst = d_.data() + static_cast<size_t>(r) * nn;
        std::memmove(dst, src, sizeof(double) * at);
        std::memmove(dst + at, src + at + n,
                     sizeof(double) * (nn - at));
    }
    rows_ = nn;
    cols_ = nn;
    d_.resize(static_cast<size_t>(nn) * nn);
}

void
MatX::mirrorLowerToUpper()
{
    assert(rows_ == cols_);
    for (int i = 0; i < rows_; ++i)
        for (int j = i + 1; j < cols_; ++j)
            (*this)(i, j) = (*this)(j, i);
}

void
MatX::makeSymmetric()
{
    assert(rows_ == cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int j = i + 1; j < cols_; ++j) {
            double v = 0.5 * ((*this)(i, j) + (*this)(j, i));
            (*this)(i, j) = v;
            (*this)(j, i) = v;
        }
    }
}

MatX
operator*(double s, const MatX &m)
{
    return m * s;
}

std::ostream &
operator<<(std::ostream &os, const MatX &m)
{
    for (int r = 0; r < m.rows(); ++r) {
        os << (r ? "\n[" : "[");
        for (int c = 0; c < m.cols(); ++c)
            os << (c ? ", " : "") << m(r, c);
        os << "]";
    }
    return os;
}

MatX
gram(const MatX &a)
{
    MatX g(a.cols(), a.cols());
    for (int k = 0; k < a.rows(); ++k) {
        const double *row = a.data() + static_cast<size_t>(k) * a.cols();
        for (int i = 0; i < a.cols(); ++i) {
            double v = row[i];
            if (v == 0.0)
                continue;
            for (int j = i; j < a.cols(); ++j)
                g(i, j) += v * row[j];
        }
    }
    for (int i = 0; i < a.cols(); ++i)
        for (int j = 0; j < i; ++j)
            g(i, j) = g(j, i);
    return g;
}

MatX
multiplyTransposed(const MatX &a, const MatX &b)
{
    MatX r;
    multiplyTransposedInto(a, b, r);
    return r;
}

} // namespace edx
