/**
 * @file
 * Dynamically sized dense matrix and vector types.
 *
 * These back the large linear-algebra workloads of the localization
 * backend: MSCKF covariance propagation and Kalman-gain computation,
 * bundle-adjustment normal equations, and marginalization. Storage is
 * row-major, owned, and contiguous; the blocked access helpers mirror the
 * block-oriented execution model of the backend accelerator (Sec. VI of
 * the paper).
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <ostream>
#include <vector>

#include "math/aligned_alloc.hpp"
#include "math/mat.hpp"
#include "math/vec.hpp"

namespace edx {

class MatX;

/** Dynamically sized column vector of doubles. */
class VecX
{
  public:
    VecX() = default;

    /** Creates a zero vector of dimension @p n. */
    explicit VecX(int n) : d_(static_cast<size_t>(n), 0.0) {}

    /** Creates a vector of dimension @p n filled with @p value. */
    VecX(int n, double value) : d_(static_cast<size_t>(n), value) {}

    /** Wraps an existing buffer by copy. */
    explicit VecX(const std::vector<double> &values)
        : d_(values.begin(), values.end())
    {
    }

    /** Converts from a fixed-size vector. */
    template <int N>
    explicit VecX(const Vec<N> &v) : d_(N)
    {
        for (int i = 0; i < N; ++i)
            d_[i] = v[i];
    }

    int size() const { return static_cast<int>(d_.size()); }

    /** Reserves capacity for @p n elements (no size change). */
    void reserve(int n) { d_.reserve(static_cast<size_t>(n)); }

    /**
     * Resizes to @p n elements, zero-filled. Reuses the existing
     * capacity: once a workspace vector has reached its steady-state
     * size this performs no heap allocation.
     */
    void resize(int n) { d_.assign(static_cast<size_t>(n), 0.0); }

    /**
     * Resizes to @p n elements preserving the existing prefix
     * (zero-fills growth); never shrinks capacity.
     */
    void conservativeResize(int n)
    {
        d_.resize(static_cast<size_t>(n), 0.0);
    }

    /** Capacity in bytes (workspace accounting). */
    size_t capacityBytes() const { return d_.capacity() * sizeof(double); }

    double &
    operator[](int i)
    {
        assert(i >= 0 && i < size());
        return d_[i];
    }

    double
    operator[](int i) const
    {
        assert(i >= 0 && i < size());
        return d_[i];
    }

    VecX operator+(const VecX &o) const;
    VecX operator-(const VecX &o) const;
    VecX operator*(double s) const;
    VecX &operator+=(const VecX &o);
    VecX &operator-=(const VecX &o);

    /** Inner product. */
    double dot(const VecX &o) const;

    double squaredNorm() const { return dot(*this); }
    double norm() const;

    /** Largest absolute element (0 for empty vectors). */
    double maxAbs() const;

    /** Copies @p v into elements [at, at+v.size()). */
    void setSegment(int at, const VecX &v);

    /** Extracts elements [at, at+n) as a new vector. */
    VecX segment(int at, int n) const;

    /** Extracts a fixed-size segment starting at @p at. */
    template <int N>
    Vec<N>
    fixedSegment(int at) const
    {
        assert(at >= 0 && at + N <= size());
        Vec<N> r;
        for (int i = 0; i < N; ++i)
            r[i] = d_[at + i];
        return r;
    }

    /** Copies a fixed-size vector into elements [at, at+N). */
    template <int N>
    void
    setFixedSegment(int at, const Vec<N> &v)
    {
        assert(at >= 0 && at + N <= size());
        for (int i = 0; i < N; ++i)
            d_[at + i] = v[i];
    }

    const double *data() const { return d_.data(); }
    double *data() { return d_.data(); }

  private:
    AlignedVector<double> d_; //!< 32-byte-aligned for the wide tiers
};

VecX operator*(double s, const VecX &v);
std::ostream &operator<<(std::ostream &os, const VecX &v);

/** Dynamically sized row-major dense matrix of doubles. */
class MatX
{
  public:
    MatX() = default;

    /** Creates a zero matrix of shape @p r x @p c. */
    MatX(int r, int c)
        : rows_(r), cols_(c), d_(static_cast<size_t>(r) * c, 0.0)
    {
        assert(r >= 0 && c >= 0);
    }

    /** Converts from a fixed-size matrix. */
    template <int R, int C>
    explicit MatX(const Mat<R, C> &m) : MatX(R, C)
    {
        for (int r = 0; r < R; ++r)
            for (int c = 0; c < C; ++c)
                (*this)(r, c) = m(r, c);
    }

    /** Returns the n x n identity. */
    static MatX identity(int n);

    /** Returns a square diagonal matrix from @p diag. */
    static MatX diagonal(const VecX &diag);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    double &
    operator()(int r, int c)
    {
        assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return d_[static_cast<size_t>(r) * cols_ + c];
    }

    double
    operator()(int r, int c) const
    {
        assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return d_[static_cast<size_t>(r) * cols_ + c];
    }

    MatX operator+(const MatX &o) const;
    MatX operator-(const MatX &o) const;
    MatX operator*(double s) const;
    MatX operator*(const MatX &o) const;
    VecX operator*(const VecX &v) const;
    MatX &operator+=(const MatX &o);
    MatX &operator-=(const MatX &o);

    MatX transpose() const;

    /** Frobenius norm. */
    double norm() const;

    /** Largest absolute element (0 for empty matrices). */
    double maxAbs() const;

    /** Extracts the sub-matrix [r0, r0+nr) x [c0, c0+nc). */
    MatX block(int r0, int c0, int nr, int nc) const;

    /** Overwrites the sub-matrix at (r0, c0) with @p b. */
    void setBlock(int r0, int c0, const MatX &b);

    /** Overwrites the sub-matrix at (r0, c0) with a fixed-size matrix. */
    template <int R, int C>
    void
    setFixedBlock(int r0, int c0, const Mat<R, C> &b)
    {
        assert(r0 + R <= rows_ && c0 + C <= cols_);
        for (int r = 0; r < R; ++r)
            for (int c = 0; c < C; ++c)
                (*this)(r0 + r, c0 + c) = b(r, c);
    }

    /** Extracts a fixed-size block at (r0, c0). */
    template <int R, int C>
    Mat<R, C>
    fixedBlock(int r0, int c0) const
    {
        assert(r0 + R <= rows_ && c0 + C <= cols_);
        Mat<R, C> b;
        for (int r = 0; r < R; ++r)
            for (int c = 0; c < C; ++c)
                b(r, c) = (*this)(r0 + r, c0 + c);
        return b;
    }

    /** Reserves capacity for an r x c matrix (no shape change). */
    void reserve(int r, int c)
    {
        d_.reserve(static_cast<size_t>(r) * c);
    }

    /**
     * Resizes to r x c and zero-fills. Reuses the existing capacity, so
     * a warm workspace matrix resizes without heap allocation.
     */
    void resize(int r, int c);

    /**
     * Resizes to r x c WITHOUT clearing retained storage — existing
     * elements keep whatever values the previous shape left there
     * (growth beyond the old element count is still zero-initialized
     * by the underlying vector). Only for callers that overwrite
     * every element before reading (e.g. factorization input copies);
     * skips the O(r*c) zero pass `resize` pays on every warm call.
     */
    void resizeNoInit(int r, int c);

    /** Zero-fills without changing the shape. */
    void setZero();

    /**
     * Resizes to r x c, preserving the overlapping top-left content.
     *
     * Performed in place by repacking rows within the existing buffer;
     * allocates only when the new extent exceeds the current capacity,
     * so the steady-state MSCKF augment/marginalize cycle is
     * allocation-free.
     */
    void conservativeResize(int r, int c);

    /**
     * Removes the square band of rows and columns [at, at+n), shifting
     * the trailing rows/columns up-left in place (the MSCKF clone
     * marginalization drop). Requires a square matrix.
     */
    void removeRowsAndCols(int at, int n);

    /** Symmetrizes in place: A <- (A + A^T) / 2 (square matrices only). */
    void makeSymmetric();

    /**
     * Copies the lower triangle onto the upper one (exact symmetry
     * from a triangle-only kernel; square matrices only).
     */
    void mirrorLowerToUpper();

    /** Capacity in bytes (workspace accounting). */
    size_t capacityBytes() const { return d_.capacity() * sizeof(double); }

    const double *data() const { return d_.data(); }
    double *data() { return d_.data(); }

  private:
    int rows_ = 0;
    int cols_ = 0;
    AlignedVector<double> d_; //!< 32-byte-aligned for the wide tiers
};

MatX operator*(double s, const MatX &m);
std::ostream &operator<<(std::ostream &os, const MatX &m);

/** Computes A^T * A without forming the transpose explicitly. */
MatX gram(const MatX &a);

/** Computes A * B^T without forming the transpose explicitly. */
MatX multiplyTransposed(const MatX &a, const MatX &b);

} // namespace edx
