/**
 * @file
 * Declarations of the AVX2+FMA math-kernel tier (math/simd_avx2.cpp).
 *
 * The definitions live in a translation unit compiled with
 * -mavx2 -mfma; everything else in the library is compiled for the
 * baseline ISA and reaches these only through the runtime dispatch in
 * math/cpu_features.hpp. The interfaces are raw-pointer-only on
 * purpose: the AVX2 TU must not instantiate any inline function or
 * template that also exists in baseline TUs, or the linker could keep
 * the AVX2-compiled copy and break SSE2-only hosts.
 *
 * Equivalence contracts (mirroring math/simd_util.hpp):
 *  - axpyRow / scaleRow / divRow and gemmUpdate4 are order-preserving
 *    per element and use no FMA: bit-exact with the SSE2 tier and the
 *    scalar references at every length.
 *  - dotRows reassociates (two 4-wide accumulators) and contracts with
 *    FMA; bounded contract. For n <= 7 it reduces exactly like the
 *    2x2-tile accumulators of multiplyTransposed (one 4-wide FMA into
 *    zero + the shared lanewise horizontal sum + scalar tail), which
 *    preserves the tile/tail agreement the kk == 4 projection kernel
 *    requires (see blas.cpp).
 *  - The f32 primitives back the float32 MSCKF path; they carry only
 *    its pose-divergence-bound contract and are free to use FMA.
 */
#pragma once

#if defined(EDX_HAVE_AVX2)

namespace edx {
namespace avx2 {

// --- f64 row primitives (AVX2 twins of detail:: in simd_util.hpp) ----
double dotRows(const double *x, const double *y, int n);
void axpyRow(double a, const double *row, double *out, int n);
void scaleRow(double a, double *out, int n);
void divRow(double a, double *out, int n);

/**
 * GEMM inner update: ci[0..n) += a0*b0 + a1*b1 + a2*b2 + a3*b3 with
 * the four adds sequential per element (the blocked GEMM's register
 * tile at AVX2 width; bit-exact with the scalar k-ordered reference).
 */
void gemmUpdate4(double a0, double a1, double a2, double a3,
                 const double *b0, const double *b1, const double *b2,
                 const double *b3, double *ci, int n);

/**
 * The blocked GEMM's AVX2 sweep: C += A * B over raw row-major buffers
 * in k-panels of height @p kc, with the active B panel packed — and
 * the current C row staged — in the 32-byte-aligned scratch @p pack
 * (capacity (min(kc, kk) + 1) * roundUp4(n) doubles). A row stride of
 * n doubles rarely keeps 32-byte alignment, so the unpacked sweep pays
 * a cache-line split on most 256-bit loads; packing removes them.
 * Values and per-element accumulation order are untouched (the staging
 * round-trips exact doubles), so the result stays bit-exact with the
 * SSE2/scalar sweep in blas.cpp.
 */
void gemmPacked(const double *a, const double *b, double *c, int m,
                int n, int kk, int kc, double *pack);

/**
 * C = A * B^T over raw row-major buffers (a: m x kk, b: n x kk,
 * c: m x n, all contiguous). Same 2x2 register-tile structure as the
 * SSE2 kernel in blas.cpp, with 4-wide FMA accumulators.
 */
void multiplyTransposed(const double *a, const double *b, double *c,
                        int m, int n, int kk);

// --- f32 row primitives (float32 MSCKF covariance path) --------------
float dotRowsF32(const float *x, const float *y, int n);
void axpyRowF32(float a, const float *row, float *out, int n);

} // namespace avx2
} // namespace edx

#endif // EDX_HAVE_AVX2
