#include "math/cpu_features.hpp"

#include <cctype>
#include <cstdlib>

namespace edx {

namespace {

/** Compiled-in ceiling: kAvx2 only when the AVX2 TUs were built. */
constexpr SimdTier
compiledTierCeiling()
{
#if defined(EDX_HAVE_AVX2)
    return SimdTier::kAvx2;
#else
    return SimdTier::kSse2;
#endif
}

bool
hostSupportsAvx2Fma()
{
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

SimdTier
detectTier()
{
    if (compiledTierCeiling() >= SimdTier::kAvx2 && hostSupportsAvx2Fma())
        return SimdTier::kAvx2;
    return SimdTier::kSse2;
}

/** Parses EDX_SIMD_LEVEL; returns the detected tier when unset/unknown. */
SimdTier
resolveStartupTier()
{
    const SimdTier detected = detectTier();
    const char *env = std::getenv("EDX_SIMD_LEVEL");
    if (!env)
        return detected;
    std::string v;
    for (const char *p = env; *p; ++p)
        v.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    SimdTier requested = detected;
    if (v == "sse2")
        requested = SimdTier::kSse2;
    else if (v == "avx2")
        requested = SimdTier::kAvx2;
    // The override can only lower the tier: forcing a wider level than
    // the host or build supports falls back to what is executable.
    return requested < detected ? requested : detected;
}

} // namespace

namespace detail {
// Dynamic-initialized; a read during earlier static init sees the
// zero-initialized value, which is the SSE2 baseline by construction.
std::atomic<int> g_simd_tier{static_cast<int>(resolveStartupTier())};
} // namespace detail

SimdTier
detectedSimdTier()
{
    // Detection is cheap and pure; recompute instead of caching so the
    // answer is valid even when called during static initialization.
    return detectTier();
}

SimdTier
setSimdTier(SimdTier tier)
{
    const SimdTier detected = detectTier();
    if (tier > detected)
        tier = detected;
    detail::g_simd_tier.store(static_cast<int>(tier),
                              std::memory_order_relaxed);
    return tier;
}

const char *
simdTierName(SimdTier tier)
{
    return tier == SimdTier::kAvx2 ? "avx2" : "sse2";
}

std::string
simdTierSummary()
{
    std::string s = simdTierName(activeSimdTier());
    s += " (detected ";
    s += simdTierName(detectedSimdTier());
    const char *env = std::getenv("EDX_SIMD_LEVEL");
    if (env) {
        s += ", EDX_SIMD_LEVEL=";
        s += env;
    } else {
        s += ", EDX_SIMD_LEVEL unset";
    }
    s += ")";
    return s;
}

} // namespace edx
