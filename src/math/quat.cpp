#include "math/quat.hpp"

#include <algorithm>

namespace edx {

Quat
Quat::fromAxisAngle(const Vec3 &axis, double angle_rad)
{
    double h = 0.5 * angle_rad;
    double s = std::sin(h);
    Vec3 a = axis.normalized();
    return Quat(std::cos(h), a[0] * s, a[1] * s, a[2] * s);
}

Quat
Quat::exp(const Vec3 &rotvec)
{
    double angle = rotvec.norm();
    if (angle < 1e-12) {
        // First-order expansion keeps the map smooth through zero.
        return Quat(1.0, 0.5 * rotvec[0], 0.5 * rotvec[1],
                    0.5 * rotvec[2]).normalized();
    }
    return fromAxisAngle(rotvec / angle, angle);
}

Quat
Quat::fromRotationMatrix(const Mat3 &r)
{
    // Shepperd's method: pick the numerically largest pivot.
    double tr = r(0, 0) + r(1, 1) + r(2, 2);
    double w, x, y, z;
    if (tr > 0.0) {
        double s = std::sqrt(tr + 1.0) * 2.0;
        w = 0.25 * s;
        x = (r(2, 1) - r(1, 2)) / s;
        y = (r(0, 2) - r(2, 0)) / s;
        z = (r(1, 0) - r(0, 1)) / s;
    } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
        double s = std::sqrt(1.0 + r(0, 0) - r(1, 1) - r(2, 2)) * 2.0;
        w = (r(2, 1) - r(1, 2)) / s;
        x = 0.25 * s;
        y = (r(0, 1) + r(1, 0)) / s;
        z = (r(0, 2) + r(2, 0)) / s;
    } else if (r(1, 1) > r(2, 2)) {
        double s = std::sqrt(1.0 + r(1, 1) - r(0, 0) - r(2, 2)) * 2.0;
        w = (r(0, 2) - r(2, 0)) / s;
        x = (r(0, 1) + r(1, 0)) / s;
        y = 0.25 * s;
        z = (r(1, 2) + r(2, 1)) / s;
    } else {
        double s = std::sqrt(1.0 + r(2, 2) - r(0, 0) - r(1, 1)) * 2.0;
        w = (r(1, 0) - r(0, 1)) / s;
        x = (r(0, 2) + r(2, 0)) / s;
        y = (r(1, 2) + r(2, 1)) / s;
        z = 0.25 * s;
    }
    return Quat(w, x, y, z).normalized();
}

Quat
Quat::fromYawPitchRoll(double yaw, double pitch, double roll)
{
    Quat qz = fromAxisAngle(Vec3{0, 0, 1}, yaw);
    Quat qy = fromAxisAngle(Vec3{0, 1, 0}, pitch);
    Quat qx = fromAxisAngle(Vec3{1, 0, 0}, roll);
    return (qz * qy * qx).normalized();
}

Quat
Quat::operator*(const Quat &o) const
{
    return Quat(w_ * o.w_ - x_ * o.x_ - y_ * o.y_ - z_ * o.z_,
                w_ * o.x_ + x_ * o.w_ + y_ * o.z_ - z_ * o.y_,
                w_ * o.y_ - x_ * o.z_ + y_ * o.w_ + z_ * o.x_,
                w_ * o.z_ + x_ * o.y_ - y_ * o.x_ + z_ * o.w_);
}

Quat
Quat::normalized() const
{
    double n = norm();
    assert(n > 0.0);
    double s = 1.0 / n;
    Quat q(w_ * s, x_ * s, y_ * s, z_ * s);
    if (q.w_ < 0.0)
        return Quat(-q.w_, -q.x_, -q.y_, -q.z_);
    return q;
}

Vec3
Quat::rotate(const Vec3 &v) const
{
    // v' = v + 2 * u x (u x v + w v), u = (x, y, z)
    Vec3 u{x_, y_, z_};
    Vec3 t = cross(u, v) * 2.0;
    return v + t * w_ + cross(u, t);
}

Mat3
Quat::toRotationMatrix() const
{
    double xx = x_ * x_, yy = y_ * y_, zz = z_ * z_;
    double xy = x_ * y_, xz = x_ * z_, yz = y_ * z_;
    double wx = w_ * x_, wy = w_ * y_, wz = w_ * z_;
    return Mat3{1 - 2 * (yy + zz), 2 * (xy - wz), 2 * (xz + wy),
                2 * (xy + wz), 1 - 2 * (xx + zz), 2 * (yz - wx),
                2 * (xz - wy), 2 * (yz + wx), 1 - 2 * (xx + yy)};
}

Vec3
Quat::log() const
{
    Quat q = normalized();
    double vn = std::sqrt(q.x_ * q.x_ + q.y_ * q.y_ + q.z_ * q.z_);
    if (vn < 1e-12)
        return Vec3{2.0 * q.x_, 2.0 * q.y_, 2.0 * q.z_};
    double angle = 2.0 * std::atan2(vn, q.w_);
    double s = angle / vn;
    return Vec3{q.x_ * s, q.y_ * s, q.z_ * s};
}

double
Quat::angularDistance(const Quat &o) const
{
    return (conjugate() * o).log().norm();
}

Quat
Quat::integrated(const Vec3 &omega, double dt) const
{
    return (*this * Quat::exp(omega * dt)).normalized();
}

Mat3
so3RightJacobian(const Vec3 &phi)
{
    double angle = phi.norm();
    Mat3 eye = Mat3::identity();
    if (angle < 1e-8) {
        return eye - skew(phi) * 0.5;
    }
    double a = (1.0 - std::cos(angle)) / (angle * angle);
    double b = (angle - std::sin(angle)) / (angle * angle * angle);
    return eye - skew(phi) * a + (skew(phi) * skew(phi)) * b;
}

} // namespace edx
