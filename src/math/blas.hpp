/**
 * @file
 * Blocked, SSE2-vectorized dense kernels over MatX/VecX.
 *
 * These are the software realizations of the backend accelerator's
 * multiplication block (Tbl. I) and the substrate of the VIO/SLAM
 * backend hot path: projection/Jacobian products, H·P·Hᵀ formation,
 * the Kalman-gain solve right-hand sides, and the covariance downdate.
 *
 * Every optimized kernel writes into a caller-owned output buffer
 * (resized in place, so warm workspace buffers never allocate) and has
 * a retained scalar `*Reference` twin preserving the pre-overhaul loop
 * order — the same equivalence contract the frontend kernels follow:
 *
 *  - gemmInto / gemvInto are bit-exact with their references: the
 *    vectorized j-lanes and the sequential k-accumulation keep every
 *    output element's floating-point operation order identical.
 *  - Dot-product-based kernels (multiplyTransposedInto, the symmetric
 *    products) use multiple accumulators, which reassociates the
 *    reduction; they are golden-tested against their references to a
 *    tight bound instead (see tests/test_math.cpp sweeps).
 *
 * Symmetric outputs (sandwich/downdate) compute the lower triangle
 * only and mirror it, halving the FLOPs *and* guaranteeing exact
 * symmetry of the result — the MSCKF covariance symmetrization is a
 * by-product of the kernel, not a fix-up pass.
 */
#pragma once

#include "math/matx.hpp"

namespace edx {

/** C = A · B (blocked, SSE2; bit-exact with gemmReference). */
void gemmInto(const MatX &a, const MatX &b, MatX &c);

/** Scalar i-k-j reference GEMM (the pre-overhaul operator*). */
void gemmReference(const MatX &a, const MatX &b, MatX &c);

/** y = A · x (bit-exact with gemvReference). */
void gemvInto(const MatX &a, const VecX &x, VecX &y);

/** Scalar row-dot reference GEMV. */
void gemvReference(const MatX &a, const VecX &x, VecX &y);

/** C = A · Bᵀ without materializing the transpose (2x2 register tile). */
void multiplyTransposedInto(const MatX &a, const MatX &b, MatX &c);

/** Scalar reference of A · Bᵀ (the pre-overhaul multiplyTransposed). */
void multiplyTransposedReference(const MatX &a, const MatX &b, MatX &c);

/**
 * Symmetric sandwich S = H · P · Hᵀ for symmetric P.
 *
 * Stage 1 fills @p hp = H · P (the Kalman-gain solve RHS, reused by the
 * caller); stage 2 computes only the lower triangle of S = hp · Hᵀ and
 * mirrors it. This is the `H·P·Hᵀ`/`J·P·Jᵀ` rank-update kernel of the
 * backend accelerator's symmetric-S optimization (Sec. VI-A).
 */
void symmetricSandwichInto(const MatX &h, const MatX &p, MatX &hp,
                           MatX &s);

/** Scalar reference sandwich (explicit full products). */
void symmetricSandwichReference(const MatX &h, const MatX &p, MatX &hp,
                                MatX &s);

/**
 * Symmetric downdate C -= Aᵀ · B for A, B of identical shape with
 * Aᵀ·B symmetric (the covariance update P -= (H·P)ᵀ·Kᵀ). Accumulates
 * rank-1 outer products over the rows of A/B into the lower triangle
 * of C, then mirrors — C leaves exactly symmetric.
 */
void symmetricDowndateInto(const MatX &a, const MatX &b, MatX &c);

/** Scalar reference downdate: C -= Aᵀ · B, full square. */
void symmetricDowndateReference(const MatX &a, const MatX &b, MatX &c);

/** S = A · Aᵀ, lower triangle computed and mirrored (syrk). */
void syrkInto(const MatX &a, MatX &s);

} // namespace edx
