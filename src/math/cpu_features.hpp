/**
 * @file
 * Runtime CPU-dispatch layer for the SIMD kernel tiers.
 *
 * The hot kernels (math/blas, math/decomp panels, image/filter,
 * features/fast) are built in tiers: an SSE2 baseline compiled into
 * every translation unit, plus optional wider tiers compiled into
 * separate TUs with their own -m flags (math/simd_avx2.cpp et al.) so
 * the binary still runs on hosts without those extensions. The active
 * tier is resolved once at startup:
 *
 *   active = min(requested via EDX_SIMD_LEVEL, detected by cpuid,
 *                compiled-in ceiling)
 *
 * and read by the kernels through a relaxed atomic (a plain load on
 * x86 — no synchronization cost in the inner loops). Tier selection
 * never changes *what* a kernel computes under its equivalence
 * contract: order-preserving primitives (axpy/scale/div, GEMM) are
 * bit-exact across tiers, reduction kernels (dots, panels) carry the
 * same bounded contract per tier and are golden-tested per tier
 * (tests/test_math.cpp, tests/test_kernels.cpp).
 *
 * EDX_SIMD_LEVEL accepts "sse2" or "avx2" (case-insensitive); it can
 * only lower the tier below what the host and the build support, so
 * forcing "avx2" on an SSE2-only host falls back gracefully.
 */
#pragma once

#include <atomic>
#include <string>

namespace edx {

/**
 * SIMD kernel tiers in ascending width. kSse2 is the zero value on
 * purpose: a zero-initialized tier global (read before its dynamic
 * initializer during static init) falls back to the always-safe
 * baseline.
 */
enum class SimdTier : int {
    kSse2 = 0, //!< 2-wide double / 16-wide byte baseline (x86-64 ABI)
    kAvx2 = 1, //!< 4-wide double FMA / 32-wide byte tier
};

namespace detail {
/** The resolved tier; dynamic-initialized in cpu_features.cpp. */
extern std::atomic<int> g_simd_tier;
} // namespace detail

/** The tier the kernels dispatch on (detection + override + ceiling). */
inline SimdTier
activeSimdTier()
{
    return static_cast<SimdTier>(
        detail::g_simd_tier.load(std::memory_order_relaxed));
}

/** True when the active tier is at least AVX2. */
inline bool
simdTierIsAvx2()
{
    return detail::g_simd_tier.load(std::memory_order_relaxed) >=
           static_cast<int>(SimdTier::kAvx2);
}

/**
 * Highest tier this host can execute with this binary: cpuid detection
 * clamped to the compiled-in ceiling (SSE2 when the AVX2 TUs were not
 * built). Ignores EDX_SIMD_LEVEL.
 */
SimdTier detectedSimdTier();

/**
 * Overrides the active tier (clamped to detectedSimdTier()). The tier
 * test loops use this to run every golden test per available tier;
 * benches use it for per-tier rows. Returns the tier actually set.
 */
SimdTier setSimdTier(SimdTier tier);

/** "sse2" / "avx2". */
const char *simdTierName(SimdTier tier);

/**
 * One-line human-readable tier state for bench headers, e.g.
 * "avx2 (detected avx2, EDX_SIMD_LEVEL unset)" or
 * "sse2 (detected avx2, EDX_SIMD_LEVEL=sse2)".
 */
std::string simdTierSummary();

} // namespace edx
