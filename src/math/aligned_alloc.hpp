/**
 * @file
 * 32-byte-aligned allocator for the dense linear-algebra storage.
 *
 * MatX/VecX buffers are the targets of the wide (AVX2) kernel tier;
 * std::vector's default allocator only guarantees 16-byte alignment
 * on this ABI, so the matrix storage uses this allocator to start
 * every buffer on a 32-byte boundary. Row starts at arbitrary column
 * counts still land mid-vector, so the kernels keep using unaligned
 * loads (which cost nothing on aligned addresses on modern x86) — the
 * alignment removes the pathological split-cache-line case for the
 * common row-start accesses.
 *
 * Deliberately implemented over plain ::operator new(size_t) with a
 * manual offset rather than the aligned (std::align_val_t) overload:
 * the zero-allocation steady-state tests count heap traffic by
 * overriding the plain operator new, and the workspace contract must
 * stay visible to them.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace edx {

template <typename T, std::size_t Align = 32> struct AlignedAllocator
{
    static_assert(Align >= alignof(void *) && Align >= alignof(T),
                  "alignment too small");
    static_assert((Align & (Align - 1)) == 0,
                  "alignment must be a power of two");

    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {
    }

    template <typename U> struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        // Over-allocate by the alignment plus one pointer slot; the
        // original block pointer is stashed just below the aligned
        // region for deallocate().
        const std::size_t bytes =
            n * sizeof(T) + Align + sizeof(void *);
        void *raw = ::operator new(bytes);
        auto addr =
            reinterpret_cast<std::uintptr_t>(raw) + sizeof(void *);
        addr = (addr + Align - 1) & ~(static_cast<std::uintptr_t>(Align) -
                                      1);
        reinterpret_cast<void **>(addr)[-1] = raw;
        return reinterpret_cast<T *>(addr);
    }

    void
    deallocate(T *p, std::size_t)
    {
        if (p)
            ::operator delete(reinterpret_cast<void **>(p)[-1]);
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U, Align> &) const
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const AlignedAllocator<U, Align> &) const
    {
        return false;
    }
};

/** The matrix/vector storage vector type (32-byte-aligned data()). */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 32>>;

} // namespace edx
