/**
 * @file
 * Rigid-body pose (SE(3)) as a rotation quaternion plus translation.
 *
 * The 6 degree-of-freedom pose of Fig. 1 of the paper: three rotational
 * DoF (yaw, pitch, roll) plus three translational DoF (x, y, z). All
 * localization outputs in this framework are Pose values expressed in a
 * fixed world frame.
 */
#pragma once

#include "math/quat.hpp"

namespace edx {

/** A 6 DoF rigid-body pose: world-from-body rotation and translation. */
struct Pose
{
    Quat rotation;      //!< world-from-body orientation
    Vec3 translation;   //!< body origin expressed in world frame

    Pose() = default;
    Pose(const Quat &q, const Vec3 &t) : rotation(q), translation(t) {}

    /** Identity transform. */
    static Pose identity() { return Pose(); }

    /** Applies this transform to a point in the body frame. */
    Vec3
    apply(const Vec3 &p_body) const
    {
        return rotation.rotate(p_body) + translation;
    }

    /** Composition: (this * o).apply(p) == this.apply(o.apply(p)). */
    Pose
    operator*(const Pose &o) const
    {
        return Pose((rotation * o.rotation).normalized(),
                    rotation.rotate(o.translation) + translation);
    }

    /** Inverse transform. */
    Pose
    inverse() const
    {
        Quat qi = rotation.inverse();
        return Pose(qi, -qi.rotate(translation));
    }

    /** The 3x4 matrix [R | t]. */
    Mat34
    matrix34() const
    {
        Mat3 r = rotation.toRotationMatrix();
        Mat34 m;
        for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j)
                m(i, j) = r(i, j);
            m(i, 3) = translation[i];
        }
        return m;
    }

    /**
     * Distance to another pose: translational (meters) and rotational
     * (radians) components.
     */
    struct Delta
    {
        double translational;
        double rotational;
    };

    Delta
    distanceTo(const Pose &o) const
    {
        return {(translation - o.translation).norm(),
                rotation.angularDistance(o.rotation)};
    }
};

} // namespace edx
