/**
 * @file
 * Fixed-size dense matrices (row-major) for small geometric computations.
 *
 * Rotation matrices, camera intrinsics, projection Jacobians and similar
 * objects are 2x2 .. 4x4; this header provides allocation-free value types
 * for them. Large, dynamically sized problems (covariances, bundle
 * adjustment systems) use edx::MatX from matx.hpp instead.
 */
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <initializer_list>
#include <ostream>

#include "math/vec.hpp"

namespace edx {

/**
 * Fixed-size row-major matrix of doubles.
 *
 * @tparam R number of rows
 * @tparam C number of columns
 */
template <int R, int C>
class Mat
{
    static_assert(R >= 1 && C >= 1, "Mat dimensions must be positive");

  public:
    /** Value-initializes all elements to zero. */
    Mat() : d_{} {}

    /** Constructs from a row-major element list of exactly R*C values. */
    Mat(std::initializer_list<double> vals)
    {
        assert(static_cast<int>(vals.size()) == R * C);
        int i = 0;
        for (double v : vals)
            d_[i++] = v;
    }

    /** Returns the zero matrix. */
    static Mat zero() { return Mat(); }

    /** Returns the identity (on the main diagonal, any shape). */
    static Mat
    identity()
    {
        Mat m;
        for (int i = 0; i < (R < C ? R : C); ++i)
            m(i, i) = 1.0;
        return m;
    }

    /** Returns a diagonal matrix with @p v on the diagonal. */
    static Mat
    diagonal(const Vec<(R < C ? R : C)> &v)
    {
        Mat m;
        for (int i = 0; i < (R < C ? R : C); ++i)
            m(i, i) = v[i];
        return m;
    }

    double &
    operator()(int r, int c)
    {
        assert(r >= 0 && r < R && c >= 0 && c < C);
        return d_[r * C + c];
    }

    double
    operator()(int r, int c) const
    {
        assert(r >= 0 && r < R && c >= 0 && c < C);
        return d_[r * C + c];
    }

    static constexpr int rows() { return R; }
    static constexpr int cols() { return C; }

    Mat
    operator+(const Mat &o) const
    {
        Mat m;
        for (int i = 0; i < R * C; ++i)
            m.d_[i] = d_[i] + o.d_[i];
        return m;
    }

    Mat
    operator-(const Mat &o) const
    {
        Mat m;
        for (int i = 0; i < R * C; ++i)
            m.d_[i] = d_[i] - o.d_[i];
        return m;
    }

    Mat
    operator*(double s) const
    {
        Mat m;
        for (int i = 0; i < R * C; ++i)
            m.d_[i] = d_[i] * s;
        return m;
    }

    Mat &
    operator+=(const Mat &o)
    {
        for (int i = 0; i < R * C; ++i)
            d_[i] += o.d_[i];
        return *this;
    }

    /** Matrix-matrix product. */
    template <int K>
    Mat<R, K>
    operator*(const Mat<C, K> &o) const
    {
        Mat<R, K> m;
        for (int r = 0; r < R; ++r) {
            for (int c = 0; c < C; ++c) {
                double a = (*this)(r, c);
                if (a == 0.0)
                    continue;
                for (int k = 0; k < K; ++k)
                    m(r, k) += a * o(c, k);
            }
        }
        return m;
    }

    /** Matrix-vector product. */
    Vec<R>
    operator*(const Vec<C> &v) const
    {
        Vec<R> r;
        for (int i = 0; i < R; ++i) {
            double s = 0.0;
            for (int j = 0; j < C; ++j)
                s += (*this)(i, j) * v[j];
            r[i] = s;
        }
        return r;
    }

    /** Transpose. */
    Mat<C, R>
    transpose() const
    {
        Mat<C, R> m;
        for (int r = 0; r < R; ++r)
            for (int c = 0; c < C; ++c)
                m(c, r) = (*this)(r, c);
        return m;
    }

    /** Frobenius norm. */
    double
    norm() const
    {
        double s = 0.0;
        for (int i = 0; i < R * C; ++i)
            s += d_[i] * d_[i];
        return std::sqrt(s);
    }

    /** Extracts column @p c. */
    Vec<R>
    col(int c) const
    {
        Vec<R> v;
        for (int i = 0; i < R; ++i)
            v[i] = (*this)(i, c);
        return v;
    }

    /** Extracts row @p r. */
    Vec<C>
    row(int r) const
    {
        Vec<C> v;
        for (int i = 0; i < C; ++i)
            v[i] = (*this)(r, i);
        return v;
    }

    /** Overwrites column @p c. */
    void
    setCol(int c, const Vec<R> &v)
    {
        for (int i = 0; i < R; ++i)
            (*this)(i, c) = v[i];
    }

    const double *data() const { return d_.data(); }
    double *data() { return d_.data(); }

  private:
    std::array<double, R * C> d_;
};

template <int R, int C>
inline Mat<R, C>
operator*(double s, const Mat<R, C> &m)
{
    return m * s;
}

template <int R, int C>
inline std::ostream &
operator<<(std::ostream &os, const Mat<R, C> &m)
{
    for (int r = 0; r < R; ++r) {
        os << (r ? "\n[" : "[");
        for (int c = 0; c < C; ++c)
            os << (c ? ", " : "") << m(r, c);
        os << "]";
    }
    return os;
}

using Mat2 = Mat<2, 2>;
using Mat3 = Mat<3, 3>;
using Mat4 = Mat<4, 4>;
using Mat23 = Mat<2, 3>;
using Mat34 = Mat<3, 4>;
using Mat36 = Mat<3, 6>;
using Mat26 = Mat<2, 6>;

/** Skew-symmetric (hat) operator: skew(v) * w == cross(v, w). */
inline Mat3
skew(const Vec3 &v)
{
    return Mat3{0.0, -v[2], v[1],
                v[2], 0.0, -v[0],
                -v[1], v[0], 0.0};
}

/** Determinant of a 2x2 matrix. */
inline double
det(const Mat2 &m)
{
    return m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0);
}

/** Determinant of a 3x3 matrix. */
inline double
det(const Mat3 &m)
{
    return m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) -
           m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0)) +
           m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
}

/** Inverse of a 2x2 matrix (asserts non-singularity). */
inline Mat2
inverse(const Mat2 &m)
{
    double d = det(m);
    assert(std::abs(d) > 1e-300);
    double s = 1.0 / d;
    return Mat2{m(1, 1) * s, -m(0, 1) * s, -m(1, 0) * s, m(0, 0) * s};
}

/** Inverse of a 3x3 matrix via the adjugate (asserts non-singularity). */
inline Mat3
inverse(const Mat3 &m)
{
    double d = det(m);
    assert(std::abs(d) > 1e-300);
    double s = 1.0 / d;
    Mat3 r;
    r(0, 0) = (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) * s;
    r(0, 1) = (m(0, 2) * m(2, 1) - m(0, 1) * m(2, 2)) * s;
    r(0, 2) = (m(0, 1) * m(1, 2) - m(0, 2) * m(1, 1)) * s;
    r(1, 0) = (m(1, 2) * m(2, 0) - m(1, 0) * m(2, 2)) * s;
    r(1, 1) = (m(0, 0) * m(2, 2) - m(0, 2) * m(2, 0)) * s;
    r(1, 2) = (m(0, 2) * m(1, 0) - m(0, 0) * m(1, 2)) * s;
    r(2, 0) = (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0)) * s;
    r(2, 1) = (m(0, 1) * m(2, 0) - m(0, 0) * m(2, 1)) * s;
    r(2, 2) = (m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0)) * s;
    return r;
}

/** Outer product a * b^T. */
template <int R, int C>
inline Mat<R, C>
outer(const Vec<R> &a, const Vec<C> &b)
{
    Mat<R, C> m;
    for (int r = 0; r < R; ++r)
        for (int c = 0; c < C; ++c)
            m(r, c) = a[r] * b[c];
    return m;
}

} // namespace edx
