/**
 * @file
 * AVX2+FMA math-kernel tier. Compiled with -mavx2 -mfma (CMake sets
 * the per-source flags only when the compiler supports them, and
 * defines EDX_HAVE_AVX2 project-wide in that case); selected at
 * runtime through math/cpu_features.hpp. See simd_avx2.hpp for the
 * per-function equivalence contracts.
 *
 * Only <immintrin.h> here: no library headers whose inline functions
 * would be compiled with AVX2 codegen and could be picked by the
 * linker over their baseline copies.
 */
#if defined(EDX_HAVE_AVX2)

#include <immintrin.h>

#include "math/simd_avx2.hpp"

namespace edx {
namespace avx2 {

namespace {

/**
 * Horizontal sum with the shared lane order: low and high 128-bit
 * halves added lanewise first, then the two lanes. Both dotRows and
 * the multiplyTransposed tile reduce through this helper, which is
 * what makes them agree bit-exactly for n <= 7.
 */
inline double
hsum(__m256d v)
{
    __m128d lo = _mm256_castpd256_pd128(v);
    __m128d hi = _mm256_extractf128_pd(v, 1);
    __m128d s2 = _mm_add_pd(lo, hi);
    double lanes[2];
    _mm_storeu_pd(lanes, s2);
    return lanes[0] + lanes[1];
}

inline float
hsumF32(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s4 = _mm_add_ps(lo, hi);
    float lanes[4];
    _mm_storeu_ps(lanes, s4);
    return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
}

} // namespace

double
dotRows(const double *x, const double *y, int n)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                               _mm256_loadu_pd(y + i + 4), acc1);
    }
    for (; i + 4 <= n; i += 4)
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i), acc0);
    double s = hsum(_mm256_add_pd(acc0, acc1));
    for (; i < n; ++i)
        s += x[i] * y[i];
    return s;
}

void
axpyRow(double a, const double *row, double *out, int n)
{
    // mul + add (no FMA): preserves the per-element operation order of
    // the scalar loop, so this tier stays bit-exact with SSE2/scalar.
    const __m256d va = _mm256_set1_pd(a);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        __m256d v = _mm256_loadu_pd(out + j);
        v = _mm256_add_pd(v, _mm256_mul_pd(va, _mm256_loadu_pd(row + j)));
        _mm256_storeu_pd(out + j, v);
    }
    for (; j < n; ++j)
        out[j] += a * row[j];
}

void
scaleRow(double a, double *out, int n)
{
    const __m256d va = _mm256_set1_pd(a);
    int j = 0;
    for (; j + 4 <= n; j += 4)
        _mm256_storeu_pd(out + j,
                         _mm256_mul_pd(va, _mm256_loadu_pd(out + j)));
    for (; j < n; ++j)
        out[j] *= a;
}

void
divRow(double a, double *out, int n)
{
    const __m256d va = _mm256_set1_pd(a);
    int j = 0;
    for (; j + 4 <= n; j += 4)
        _mm256_storeu_pd(out + j,
                         _mm256_div_pd(_mm256_loadu_pd(out + j), va));
    for (; j < n; ++j)
        out[j] /= a;
}

void
gemmUpdate4(double a0, double a1, double a2, double a3, const double *b0,
            const double *b1, const double *b2, const double *b3,
            double *ci, int n)
{
    const __m256d va0 = _mm256_set1_pd(a0);
    const __m256d va1 = _mm256_set1_pd(a1);
    const __m256d va2 = _mm256_set1_pd(a2);
    const __m256d va3 = _mm256_set1_pd(a3);
    int j = 0;
    // The four adds stay sequential per element (mul + add, no FMA):
    // every c element sees the exact k-ordered accumulation of the
    // scalar reference, independent of the vector width.
    for (; j + 4 <= n; j += 4) {
        __m256d v = _mm256_loadu_pd(ci + j);
        v = _mm256_add_pd(v, _mm256_mul_pd(va0, _mm256_loadu_pd(b0 + j)));
        v = _mm256_add_pd(v, _mm256_mul_pd(va1, _mm256_loadu_pd(b1 + j)));
        v = _mm256_add_pd(v, _mm256_mul_pd(va2, _mm256_loadu_pd(b2 + j)));
        v = _mm256_add_pd(v, _mm256_mul_pd(va3, _mm256_loadu_pd(b3 + j)));
        _mm256_storeu_pd(ci + j, v);
    }
    for (; j < n; ++j) {
        double v = ci[j];
        v += a0 * b0[j];
        v += a1 * b1[j];
        v += a2 * b2[j];
        v += a3 * b3[j];
        ci[j] = v;
    }
}

void
gemmPacked(const double *a, const double *b, double *c, int m, int n,
           int kk, int kc, double *pack)
{
    const int np = (n + 3) & ~3; // packed row stride, 32B-aligned rows
    const int kp = kc < kk ? kc : kk;
    double *crow = pack + static_cast<long>(kp) * np;
    for (int k0 = 0; k0 < kk; k0 += kp) {
        const int k1 = k0 + kp < kk ? k0 + kp : kk;
        for (int k = k0; k < k1; ++k) {
            const double *src = b + static_cast<long>(k) * n;
            double *dst = pack + static_cast<long>(k - k0) * np;
            int j = 0;
            for (; j + 4 <= n; j += 4)
                _mm256_store_pd(dst + j, _mm256_loadu_pd(src + j));
            for (; j < n; ++j)
                dst[j] = src[j];
        }
        for (int i = 0; i < m; ++i) {
            const double *ai = a + static_cast<long>(i) * kk;
            double *ci = c + static_cast<long>(i) * n;
            int j = 0;
            for (; j + 4 <= n; j += 4)
                _mm256_store_pd(crow + j, _mm256_loadu_pd(ci + j));
            for (; j < n; ++j)
                crow[j] = ci[j];
            int k = k0;
            for (; k + 4 <= k1; k += 4) {
                const double *b0 =
                    pack + static_cast<long>(k - k0) * np;
                gemmUpdate4(ai[k], ai[k + 1], ai[k + 2], ai[k + 3], b0,
                            b0 + np, b0 + 2 * np, b0 + 3 * np, crow, n);
            }
            for (; k < k1; ++k)
                axpyRow(ai[k], pack + static_cast<long>(k - k0) * np,
                        crow, n);
            j = 0;
            for (; j + 4 <= n; j += 4)
                _mm256_storeu_pd(ci + j, _mm256_load_pd(crow + j));
            for (; j < n; ++j)
                ci[j] = crow[j];
        }
    }
}

void
multiplyTransposed(const double *a, const double *b, double *c, int m,
                   int n, int kk)
{
    int i = 0;
    for (; i + 2 <= m; i += 2) {
        const double *a0 = a + static_cast<long>(i) * kk;
        const double *a1 = a0 + kk;
        double *c0 = c + static_cast<long>(i) * n;
        double *c1 = c0 + n;
        int j = 0;
        for (; j + 2 <= n; j += 2) {
            const double *b0 = b + static_cast<long>(j) * kk;
            const double *b1 = b0 + kk;
            __m256d s00 = _mm256_setzero_pd();
            __m256d s01 = _mm256_setzero_pd();
            __m256d s10 = _mm256_setzero_pd();
            __m256d s11 = _mm256_setzero_pd();
            int k = 0;
            for (; k + 4 <= kk; k += 4) {
                const __m256d va0 = _mm256_loadu_pd(a0 + k);
                const __m256d va1 = _mm256_loadu_pd(a1 + k);
                const __m256d vb0 = _mm256_loadu_pd(b0 + k);
                const __m256d vb1 = _mm256_loadu_pd(b1 + k);
                s00 = _mm256_fmadd_pd(va0, vb0, s00);
                s01 = _mm256_fmadd_pd(va0, vb1, s01);
                s10 = _mm256_fmadd_pd(va1, vb0, s10);
                s11 = _mm256_fmadd_pd(va1, vb1, s11);
            }
            double d00 = hsum(s00), d01 = hsum(s01);
            double d10 = hsum(s10), d11 = hsum(s11);
            // Scalar k tail after the horizontal sum: for kk <= 7 this
            // tile reduces exactly like dotRows (one 4-wide FMA into a
            // zero accumulator + shared hsum + scalar tail), so a value
            // never depends on which loop (tile vs row/column tail)
            // computed it — the kk == 4 projection-kernel contract.
            for (; k < kk; ++k) {
                d00 += a0[k] * b0[k];
                d01 += a0[k] * b1[k];
                d10 += a1[k] * b0[k];
                d11 += a1[k] * b1[k];
            }
            c0[j] = d00;
            c0[j + 1] = d01;
            c1[j] = d10;
            c1[j + 1] = d11;
        }
        for (; j < n; ++j) {
            const double *bj = b + static_cast<long>(j) * kk;
            c0[j] = dotRows(a0, bj, kk);
            c1[j] = dotRows(a1, bj, kk);
        }
    }
    for (; i < m; ++i) {
        const double *ai = a + static_cast<long>(i) * kk;
        double *ci = c + static_cast<long>(i) * n;
        for (int j = 0; j < n; ++j)
            ci[j] = dotRows(ai, b + static_cast<long>(j) * kk, kk);
    }
}

float
dotRowsF32(const float *x, const float *y, int n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                               _mm256_loadu_ps(y + i + 8), acc1);
    }
    for (; i + 8 <= n; i += 8)
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i), acc0);
    float s = hsumF32(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i)
        s += x[i] * y[i];
    return s;
}

void
axpyRowF32(float a, const float *row, float *out, int n)
{
    const __m256 va = _mm256_set1_ps(a);
    int j = 0;
    for (; j + 8 <= n; j += 8) {
        __m256 v = _mm256_loadu_ps(out + j);
        v = _mm256_fmadd_ps(va, _mm256_loadu_ps(row + j), v);
        _mm256_storeu_ps(out + j, v);
    }
    for (; j < n; ++j)
        out[j] += a * row[j];
}

} // namespace avx2
} // namespace edx

#endif // EDX_HAVE_AVX2
