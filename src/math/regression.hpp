/**
 * @file
 * Polynomial least-squares regression.
 *
 * The Eudoxus runtime scheduler (Sec. VI-B) predicts backend kernel
 * latency from matrix sizes with simple regression models fit offline:
 * linear for the projection kernel, quadratic for Kalman gain and
 * marginalization. This header provides those models.
 */
#pragma once

#include <vector>

#include "math/matx.hpp"

namespace edx {

/**
 * A fitted univariate polynomial model y = c0 + c1 x + ... + cd x^d.
 */
class PolynomialModel
{
  public:
    PolynomialModel() = default;

    /** Constructs from explicit coefficients (index == power). */
    explicit PolynomialModel(std::vector<double> coeffs)
        : coeffs_(std::move(coeffs))
    {}

    /**
     * Fits a degree-@p degree polynomial to (x, y) samples by solving the
     * normal equations. Requires at least degree+1 samples.
     */
    static PolynomialModel fit(const std::vector<double> &xs,
                               const std::vector<double> &ys, int degree);

    /** Evaluates the model at @p x. */
    double predict(double x) const;

    /** Evaluates the model over a series. */
    std::vector<double> predict(const std::vector<double> &xs) const;

    /** Coefficient of determination against a labelled sample set. */
    double r2(const std::vector<double> &xs,
              const std::vector<double> &ys) const;

    const std::vector<double> &coefficients() const { return coeffs_; }

    /** Degree of the fitted polynomial (-1 when unfit). */
    int degree() const { return static_cast<int>(coeffs_.size()) - 1; }

  private:
    std::vector<double> coeffs_;
};

} // namespace edx
