#include "math/blas.hpp"

#include <algorithm>
#include <cstring>

#include "math/aligned_alloc.hpp"
#include "math/simd_util.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace edx {

using detail::axpyRow;
using detail::dotRows;

namespace {

// k-panel height of the blocked GEMM: the active B panel (KC x n
// doubles) stays L2-resident across the full sweep of A's rows for the
// MSCKF-realistic n (state dims up to ~200).
constexpr int kGemmKc = 64;

} // namespace

void
gemmInto(const MatX &a, const MatX &b, MatX &c)
{
    assert(a.cols() == b.rows());
    const int m = a.rows(), kk = a.cols(), n = b.cols();
    c.resize(m, n);
    if (m == 0 || n == 0 || kk == 0)
        return;

#if defined(EDX_HAVE_AVX2)
    // Packed-panel sweep: the active B panel and the current C row
    // live in 32-byte-aligned scratch, removing the cache-line splits
    // an n-double row stride forces on 256-bit loads. Same k order and
    // per-element accumulation — bit-exact with the sweep below (see
    // simd_avx2.hpp), so the size gate changes no value: packing a
    // panel only pays when it is reused across enough rows of A, and
    // the SLAM BA path's small blocks would eat the setup cost. The
    // scratch is thread_local so it warms once and backend steady
    // state stays zero-alloc.
    if (simdTierIsAvx2() && m >= 8 && n >= 16) {
        static thread_local AlignedVector<double> pack;
        const int np = (n + 3) & ~3;
        pack.resize(
            (static_cast<size_t>(std::min(kGemmKc, kk)) + 1) * np);
        avx2::gemmPacked(a.data(), b.data(), c.data(), m, n, kk,
                         kGemmKc, pack.data());
        return;
    }
#endif
    for (int k0 = 0; k0 < kk; k0 += kGemmKc) {
        const int k1 = std::min(k0 + kGemmKc, kk);
        for (int i = 0; i < m; ++i) {
            const double *ai = a.data() + static_cast<size_t>(i) * kk;
            double *ci = c.data() + static_cast<size_t>(i) * n;
            int k = k0;
            // Register tile: four A scalars held live against a
            // vectorized sweep of the output row. The four adds stay
            // sequential per element, so every c(i, j) sees the exact
            // k-ordered accumulation of the scalar reference — at any
            // vector width, which is why the AVX2 tier below is
            // bit-exact with this SSE2 sweep and the scalar tail.
            for (; k + 4 <= k1; k += 4) {
                const double a0 = ai[k], a1 = ai[k + 1];
                const double a2 = ai[k + 2], a3 = ai[k + 3];
                const double *b0 =
                    b.data() + static_cast<size_t>(k) * n;
                const double *b1 = b0 + n;
                const double *b2 = b1 + n;
                const double *b3 = b2 + n;
#if defined(__SSE2__)
                const __m128d va0 = _mm_set1_pd(a0);
                const __m128d va1 = _mm_set1_pd(a1);
                const __m128d va2 = _mm_set1_pd(a2);
                const __m128d va3 = _mm_set1_pd(a3);
                int j = 0;
                for (; j + 2 <= n; j += 2) {
                    __m128d v = _mm_loadu_pd(ci + j);
                    v = _mm_add_pd(
                        v, _mm_mul_pd(va0, _mm_loadu_pd(b0 + j)));
                    v = _mm_add_pd(
                        v, _mm_mul_pd(va1, _mm_loadu_pd(b1 + j)));
                    v = _mm_add_pd(
                        v, _mm_mul_pd(va2, _mm_loadu_pd(b2 + j)));
                    v = _mm_add_pd(
                        v, _mm_mul_pd(va3, _mm_loadu_pd(b3 + j)));
                    _mm_storeu_pd(ci + j, v);
                }
#else
                int j = 0;
#endif
                for (; j < n; ++j) {
                    double v = ci[j];
                    v += a0 * b0[j];
                    v += a1 * b1[j];
                    v += a2 * b2[j];
                    v += a3 * b3[j];
                    ci[j] = v;
                }
            }
            for (; k < k1; ++k)
                axpyRow(ai[k], b.data() + static_cast<size_t>(k) * n,
                        ci, n);
        }
    }
}

void
gemmReference(const MatX &a, const MatX &b, MatX &c)
{
    assert(a.cols() == b.rows());
    const int m = a.rows(), kk = a.cols(), n = b.cols();
    c.resize(m, n);
    // The pre-overhaul i-k-j product, zero-skip included.
    for (int i = 0; i < m; ++i) {
        double *out = c.data() + static_cast<size_t>(i) * n;
        const double *ai = a.data() + static_cast<size_t>(i) * kk;
        for (int k = 0; k < kk; ++k) {
            double av = ai[k];
            if (av == 0.0)
                continue;
            const double *bk = b.data() + static_cast<size_t>(k) * n;
            for (int j = 0; j < n; ++j)
                out[j] += av * bk[j];
        }
    }
}

void
gemvInto(const MatX &a, const VecX &x, VecX &y)
{
    assert(a.cols() == x.size());
    const int m = a.rows(), n = a.cols();
    y.resize(m);
    for (int i = 0; i < m; ++i) {
        const double *ai = a.data() + static_cast<size_t>(i) * n;
        // Sequential sum keeps gemv bit-exact with the reference.
        double s = 0.0;
        for (int j = 0; j < n; ++j)
            s += ai[j] * x[j];
        y[i] = s;
    }
}

void
gemvReference(const MatX &a, const VecX &x, VecX &y)
{
    gemvInto(a, x, y);
}

void
multiplyTransposedInto(const MatX &a, const MatX &b, MatX &c)
{
    assert(a.cols() == b.cols());
    const int m = a.rows(), n = b.rows(), kk = a.cols();
    c.resize(m, n);
#if defined(EDX_HAVE_AVX2)
    if (simdTierIsAvx2()) {
        // Same 2x2-tile structure at AVX2 width; its tile/tail
        // agreement for kk <= 7 covers the kk == 4 projection-kernel
        // contract below (see simd_avx2.hpp).
        avx2::multiplyTransposed(a.data(), b.data(), c.data(), m, n,
                                 kk);
        return;
    }
#endif
    int i = 0;
    // 2x2 register tile: each pair of A rows is streamed once against
    // each pair of B rows, halving the traffic of the naive row-dot.
    for (; i + 2 <= m; i += 2) {
        const double *a0 = a.data() + static_cast<size_t>(i) * kk;
        const double *a1 = a0 + kk;
        double *c0 = c.data() + static_cast<size_t>(i) * n;
        double *c1 = c0 + n;
        int j = 0;
        for (; j + 2 <= n; j += 2) {
            const double *b0 = b.data() + static_cast<size_t>(j) * kk;
            const double *b1 = b0 + kk;
#if defined(__SSE2__)
            __m128d s00 = _mm_setzero_pd(), s01 = _mm_setzero_pd();
            __m128d s10 = _mm_setzero_pd(), s11 = _mm_setzero_pd();
            int k = 0;
            for (; k + 2 <= kk; k += 2) {
                const __m128d va0 = _mm_loadu_pd(a0 + k);
                const __m128d va1 = _mm_loadu_pd(a1 + k);
                const __m128d vb0 = _mm_loadu_pd(b0 + k);
                const __m128d vb1 = _mm_loadu_pd(b1 + k);
                s00 = _mm_add_pd(s00, _mm_mul_pd(va0, vb0));
                s01 = _mm_add_pd(s01, _mm_mul_pd(va0, vb1));
                s10 = _mm_add_pd(s10, _mm_mul_pd(va1, vb0));
                s11 = _mm_add_pd(s11, _mm_mul_pd(va1, vb1));
            }
            double l00[2], l01[2], l10[2], l11[2];
            _mm_storeu_pd(l00, s00);
            _mm_storeu_pd(l01, s01);
            _mm_storeu_pd(l10, s10);
            _mm_storeu_pd(l11, s11);
            double d00 = l00[0] + l00[1], d01 = l01[0] + l01[1];
            double d10 = l10[0] + l10[1], d11 = l11[0] + l11[1];
            for (; k < kk; ++k) {
                d00 += a0[k] * b0[k];
                d01 += a0[k] * b1[k];
                d10 += a1[k] * b0[k];
                d11 += a1[k] * b1[k];
            }
#else
            // Reduce exactly like dotRows so a value never depends on
            // which loop (tile vs tail) computed it. NOTE: on the SSE2
            // path above this tile/tail agreement holds only for
            // kk <= 6 (the stride-2 tile and stride-4 dotRows
            // reductions coincide there) — enough for the projection
            // kernel's kk == 4, which is the one contract that demands
            // it (batched-vs-direct bit-identity, test-enforced).
            double d00 = dotRows(a0, b0, kk);
            double d01 = dotRows(a0, b1, kk);
            double d10 = dotRows(a1, b0, kk);
            double d11 = dotRows(a1, b1, kk);
#endif
            c0[j] = d00;
            c0[j + 1] = d01;
            c1[j] = d10;
            c1[j + 1] = d11;
        }
        for (; j < n; ++j) {
            const double *bj = b.data() + static_cast<size_t>(j) * kk;
            c0[j] = dotRows(a0, bj, kk);
            c1[j] = dotRows(a1, bj, kk);
        }
    }
    for (; i < m; ++i) {
        const double *ai = a.data() + static_cast<size_t>(i) * kk;
        double *ci = c.data() + static_cast<size_t>(i) * n;
        for (int j = 0; j < n; ++j)
            ci[j] = dotRows(
                ai, b.data() + static_cast<size_t>(j) * kk, kk);
    }
}

void
multiplyTransposedReference(const MatX &a, const MatX &b, MatX &c)
{
    assert(a.cols() == b.cols());
    const int m = a.rows(), n = b.rows(), kk = a.cols();
    c.resize(m, n);
    for (int i = 0; i < m; ++i) {
        const double *ai = a.data() + static_cast<size_t>(i) * kk;
        for (int j = 0; j < n; ++j) {
            const double *bj = b.data() + static_cast<size_t>(j) * kk;
            double s = 0.0;
            for (int k = 0; k < kk; ++k)
                s += ai[k] * bj[k];
            c(i, j) = s;
        }
    }
}

void
symmetricSandwichInto(const MatX &h, const MatX &p, MatX &hp, MatX &s)
{
    assert(p.rows() == p.cols() && h.cols() == p.rows());
    const int r = h.rows(), d = h.cols();
    gemmInto(h, p, hp); // r x d, reused by the caller as the solve RHS
    s.resize(r, r);
#if defined(EDX_HAVE_AVX2)
    // Aligned re-stride of both dot operands — same cache-line-split
    // rationale (and row-reuse size gate) as the packed GEMM sweep,
    // and numerically a no-op: dotRows sees the same values at the
    // same length, so every S entry is identical to the unpacked
    // loop's.
    if (simdTierIsAvx2() && r >= 16 && d >= 16) {
        static thread_local AlignedVector<double> packed;
        const int np = (d + 3) & ~3;
        packed.resize(2 * static_cast<size_t>(r) * np);
        double *hp_a = packed.data();
        double *h_a = hp_a + static_cast<size_t>(r) * np;
        for (int i = 0; i < r; ++i) {
            std::memcpy(hp_a + static_cast<size_t>(i) * np,
                        hp.data() + static_cast<size_t>(i) * d,
                        sizeof(double) * static_cast<size_t>(d));
            std::memcpy(h_a + static_cast<size_t>(i) * np,
                        h.data() + static_cast<size_t>(i) * d,
                        sizeof(double) * static_cast<size_t>(d));
        }
        for (int i = 0; i < r; ++i) {
            const double *hpi = hp_a + static_cast<size_t>(i) * np;
            double *si = s.data() + static_cast<size_t>(i) * r;
            for (int j = 0; j <= i; ++j)
                si[j] = avx2::dotRows(
                    hpi, h_a + static_cast<size_t>(j) * np, d);
        }
        s.mirrorLowerToUpper();
        return;
    }
#endif
    for (int i = 0; i < r; ++i) {
        const double *hpi = hp.data() + static_cast<size_t>(i) * d;
        double *si = s.data() + static_cast<size_t>(i) * r;
        for (int j = 0; j <= i; ++j)
            si[j] = dotRows(
                hpi, h.data() + static_cast<size_t>(j) * d, d);
    }
    s.mirrorLowerToUpper();
}

void
symmetricSandwichReference(const MatX &h, const MatX &p, MatX &hp,
                           MatX &s)
{
    gemmReference(h, p, hp);
    multiplyTransposedReference(hp, h, s);
}

void
symmetricDowndateInto(const MatX &a, const MatX &b, MatX &c)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    assert(c.rows() == a.cols() && c.cols() == a.cols());
    const int m = a.rows(), n = a.cols();
    // Rank-1 outer-product accumulation over the rows of A/B into the
    // lower triangle: row i of C is touched contiguously on [0, i].
    for (int k = 0; k < m; ++k) {
        const double *ak = a.data() + static_cast<size_t>(k) * n;
        const double *bk = b.data() + static_cast<size_t>(k) * n;
        for (int i = 0; i < n; ++i) {
            const double av = ak[i];
            if (av == 0.0)
                continue;
            double *ci = c.data() + static_cast<size_t>(i) * n;
            axpyRow(-av, bk, ci, i + 1);
        }
    }
    c.mirrorLowerToUpper();
}

void
symmetricDowndateReference(const MatX &a, const MatX &b, MatX &c)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    assert(c.rows() == a.cols() && c.cols() == a.cols());
    const int m = a.rows(), n = a.cols();
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
            double s = 0.0;
            for (int k = 0; k < m; ++k)
                s += a(k, i) * b(k, j);
            c(i, j) -= s;
        }
}

void
syrkInto(const MatX &a, MatX &s)
{
    const int m = a.rows(), kk = a.cols();
    s.resize(m, m);
    for (int i = 0; i < m; ++i) {
        const double *ai = a.data() + static_cast<size_t>(i) * kk;
        double *si = s.data() + static_cast<size_t>(i) * m;
        for (int j = 0; j <= i; ++j)
            si[j] = dotRows(
                ai, a.data() + static_cast<size_t>(j) * kk, kk);
    }
    s.mirrorLowerToUpper();
}

} // namespace edx
