#include "math/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace edx {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
rsdPercent(const std::vector<double> &xs)
{
    double m = mean(xs);
    if (m == 0.0)
        return 0.0;
    return 100.0 * stddev(xs) / std::abs(m);
}

double
rms(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x * x;
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
rmse(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    if (a.empty())
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(s / static_cast<double>(a.size()));
}

double
minValue(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double
maxValue(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    assert(p >= 0.0 && p <= 100.0);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
rSquared(const std::vector<double> &obs, const std::vector<double> &pred)
{
    assert(obs.size() == pred.size());
    if (obs.size() < 2)
        return 0.0;
    double m = mean(obs);
    double ss_res = 0.0, ss_tot = 0.0;
    for (size_t i = 0; i < obs.size(); ++i) {
        ss_res += (obs[i] - pred[i]) * (obs[i] - pred[i]);
        ss_tot += (obs[i] - m) * (obs[i] - m);
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

Summary
summarize(const std::vector<double> &xs)
{
    Summary s;
    s.mean = mean(xs);
    s.sd = stddev(xs);
    s.rsd_percent = rsdPercent(xs);
    s.min = minValue(xs);
    s.max = maxValue(xs);
    s.p50 = percentile(xs, 50.0);
    s.p99 = percentile(xs, 99.0);
    s.count = static_cast<int>(xs.size());
    return s;
}

} // namespace edx
