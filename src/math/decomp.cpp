#include "math/decomp.hpp"

#include <algorithm>
#include <cmath>

namespace edx {

Cholesky::Cholesky(const MatX &a)
{
    assert(a.rows() == a.cols());
    const int n = a.rows();
    l_ = MatX(n, n);
    for (int j = 0; j < n; ++j) {
        double d = a(j, j);
        for (int k = 0; k < j; ++k)
            d -= l_(j, k) * l_(j, k);
        if (d <= 0.0 || !std::isfinite(d)) {
            ok_ = false;
            return;
        }
        double lj = std::sqrt(d);
        l_(j, j) = lj;
        for (int i = j + 1; i < n; ++i) {
            double s = a(i, j);
            for (int k = 0; k < j; ++k)
                s -= l_(i, k) * l_(j, k);
            l_(i, j) = s / lj;
        }
    }
    ok_ = true;
}

VecX
Cholesky::solve(const VecX &b) const
{
    assert(ok_);
    VecX y = forwardSubstitute(l_, b);
    // Backward substitution with L^T without materializing the transpose.
    const int n = l_.rows();
    VecX x(n);
    for (int i = n - 1; i >= 0; --i) {
        double s = y[i];
        for (int j = i + 1; j < n; ++j)
            s -= l_(j, i) * x[j];
        x[i] = s / l_(i, i);
    }
    return x;
}

MatX
Cholesky::solve(const MatX &b) const
{
    assert(ok_);
    MatX x(b.rows(), b.cols());
    for (int c = 0; c < b.cols(); ++c) {
        VecX col(b.rows());
        for (int r = 0; r < b.rows(); ++r)
            col[r] = b(r, c);
        VecX sol = solve(col);
        for (int r = 0; r < b.rows(); ++r)
            x(r, c) = sol[r];
    }
    return x;
}

double
Cholesky::logDeterminant() const
{
    assert(ok_);
    double s = 0.0;
    for (int i = 0; i < l_.rows(); ++i)
        s += std::log(l_(i, i));
    return 2.0 * s;
}

PartialPivLU::PartialPivLU(const MatX &a)
{
    assert(a.rows() == a.cols());
    const int n = a.rows();
    lu_ = a;
    perm_.resize(n);
    for (int i = 0; i < n; ++i)
        perm_[i] = i;

    ok_ = true;
    for (int k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude in column k.
        int piv = k;
        double best = std::abs(lu_(k, k));
        for (int i = k + 1; i < n; ++i) {
            double v = std::abs(lu_(i, k));
            if (v > best) {
                best = v;
                piv = i;
            }
        }
        if (best < 1e-300 || !std::isfinite(best)) {
            ok_ = false;
            return;
        }
        if (piv != k) {
            for (int c = 0; c < n; ++c)
                std::swap(lu_(k, c), lu_(piv, c));
            std::swap(perm_[k], perm_[piv]);
            sign_ = -sign_;
        }
        double inv = 1.0 / lu_(k, k);
        for (int i = k + 1; i < n; ++i) {
            double m = lu_(i, k) * inv;
            lu_(i, k) = m;
            for (int c = k + 1; c < n; ++c)
                lu_(i, c) -= m * lu_(k, c);
        }
    }
}

VecX
PartialPivLU::solve(const VecX &b) const
{
    assert(ok_);
    const int n = lu_.rows();
    assert(b.size() == n);
    // Apply permutation, then unit-lower forward and upper backward solves.
    VecX y(n);
    for (int i = 0; i < n; ++i)
        y[i] = b[perm_[i]];
    for (int i = 0; i < n; ++i) {
        double s = y[i];
        for (int j = 0; j < i; ++j)
            s -= lu_(i, j) * y[j];
        y[i] = s;
    }
    VecX x(n);
    for (int i = n - 1; i >= 0; --i) {
        double s = y[i];
        for (int j = i + 1; j < n; ++j)
            s -= lu_(i, j) * x[j];
        x[i] = s / lu_(i, i);
    }
    return x;
}

MatX
PartialPivLU::solve(const MatX &b) const
{
    assert(ok_);
    MatX x(b.rows(), b.cols());
    for (int c = 0; c < b.cols(); ++c) {
        VecX col(b.rows());
        for (int r = 0; r < b.rows(); ++r)
            col[r] = b(r, c);
        VecX sol = solve(col);
        for (int r = 0; r < b.rows(); ++r)
            x(r, c) = sol[r];
    }
    return x;
}

MatX
PartialPivLU::inverse() const
{
    assert(ok_);
    return solve(MatX::identity(lu_.rows()));
}

double
PartialPivLU::determinant() const
{
    if (!ok_)
        return 0.0;
    double d = sign_;
    for (int i = 0; i < lu_.rows(); ++i)
        d *= lu_(i, i);
    return d;
}

HouseholderQR::HouseholderQR(const MatX &a)
    : qr_(a), m_(a.rows()), n_(a.cols())
{
    assert(m_ >= n_);
    beta_.assign(n_, 0.0);

    for (int k = 0; k < n_; ++k) {
        // Build the Householder vector for column k below the diagonal.
        double norm2 = 0.0;
        for (int i = k; i < m_; ++i)
            norm2 += qr_(i, k) * qr_(i, k);
        double alpha = std::sqrt(norm2);
        if (alpha < 1e-300) {
            beta_[k] = 0.0;
            continue;
        }
        if (qr_(k, k) > 0.0)
            alpha = -alpha;
        double v0 = qr_(k, k) - alpha;
        // v = (v0, a(k+1..m-1, k)); beta = 2 / ||v||^2.
        double vnorm2 = v0 * v0;
        for (int i = k + 1; i < m_; ++i)
            vnorm2 += qr_(i, k) * qr_(i, k);
        beta_[k] = (vnorm2 > 0.0) ? 2.0 / vnorm2 : 0.0;

        // Apply the reflector to the trailing columns.
        for (int c = k + 1; c < n_; ++c) {
            double s = v0 * qr_(k, c);
            for (int i = k + 1; i < m_; ++i)
                s += qr_(i, k) * qr_(i, c);
            s *= beta_[k];
            qr_(k, c) -= s * v0;
            for (int i = k + 1; i < m_; ++i)
                qr_(i, c) -= s * qr_(i, k);
        }
        qr_(k, k) = alpha;
        // Store v (below diagonal) normalized by v0 so we can reapply it.
        if (v0 != 0.0) {
            for (int i = k + 1; i < m_; ++i)
                qr_(i, k) /= v0;
            beta_[k] *= v0 * v0;
        } else {
            for (int i = k + 1; i < m_; ++i)
                qr_(i, k) = 0.0;
        }
    }

    r_ = MatX(n_, n_);
    for (int i = 0; i < n_; ++i)
        for (int j = i; j < n_; ++j)
            r_(i, j) = qr_(i, j);
}

void
HouseholderQR::applyHouseholder(VecX &b) const
{
    assert(b.size() == m_);
    for (int k = 0; k < n_; ++k) {
        if (beta_[k] == 0.0)
            continue;
        double s = b[k];
        for (int i = k + 1; i < m_; ++i)
            s += qr_(i, k) * b[i];
        s *= beta_[k];
        b[k] -= s;
        for (int i = k + 1; i < m_; ++i)
            b[i] -= s * qr_(i, k);
    }
}

VecX
HouseholderQR::qtb(const VecX &b) const
{
    VecX r = b;
    applyHouseholder(r);
    return r;
}

MatX
HouseholderQR::qtb(const MatX &b) const
{
    assert(b.rows() == m_);
    MatX out(b.rows(), b.cols());
    for (int c = 0; c < b.cols(); ++c) {
        VecX col(b.rows());
        for (int r = 0; r < b.rows(); ++r)
            col[r] = b(r, c);
        applyHouseholder(col);
        for (int r = 0; r < b.rows(); ++r)
            out(r, c) = col[r];
    }
    return out;
}

VecX
HouseholderQR::solve(const VecX &b) const
{
    VecX y = qtb(b);
    VecX x(n_);
    for (int i = n_ - 1; i >= 0; --i) {
        double s = y[i];
        for (int j = i + 1; j < n_; ++j)
            s -= r_(i, j) * x[j];
        x[i] = (std::abs(r_(i, i)) > 1e-300) ? s / r_(i, i) : 0.0;
    }
    return x;
}

int
HouseholderQR::rank(double tol) const
{
    int r = 0;
    for (int i = 0; i < n_; ++i) {
        if (std::abs(r_(i, i)) > tol)
            ++r;
    }
    return r;
}

VecX
forwardSubstitute(const MatX &l, const VecX &b)
{
    assert(l.rows() == l.cols() && l.rows() == b.size());
    const int n = l.rows();
    VecX x(n);
    for (int i = 0; i < n; ++i) {
        double s = b[i];
        for (int j = 0; j < i; ++j)
            s -= l(i, j) * x[j];
        assert(std::abs(l(i, i)) > 0.0);
        x[i] = s / l(i, i);
    }
    return x;
}

MatX
forwardSubstitute(const MatX &l, const MatX &b)
{
    MatX x(b.rows(), b.cols());
    for (int c = 0; c < b.cols(); ++c) {
        VecX col(b.rows());
        for (int r = 0; r < b.rows(); ++r)
            col[r] = b(r, c);
        VecX sol = forwardSubstitute(l, col);
        for (int r = 0; r < b.rows(); ++r)
            x(r, c) = sol[r];
    }
    return x;
}

VecX
backwardSubstitute(const MatX &u, const VecX &b)
{
    assert(u.rows() == u.cols() && u.rows() == b.size());
    const int n = u.rows();
    VecX x(n);
    for (int i = n - 1; i >= 0; --i) {
        double s = b[i];
        for (int j = i + 1; j < n; ++j)
            s -= u(i, j) * x[j];
        assert(std::abs(u(i, i)) > 0.0);
        x[i] = s / u(i, i);
    }
    return x;
}

MatX
backwardSubstitute(const MatX &u, const MatX &b)
{
    MatX x(b.rows(), b.cols());
    for (int c = 0; c < b.cols(); ++c) {
        VecX col(b.rows());
        for (int r = 0; r < b.rows(); ++r)
            col[r] = b(r, c);
        VecX sol = backwardSubstitute(u, col);
        for (int r = 0; r < b.rows(); ++r)
            x(r, c) = sol[r];
    }
    return x;
}

std::optional<MatX>
solveSpd(const MatX &a, const MatX &b)
{
    Cholesky chol(a);
    if (chol.ok())
        return chol.solve(b);
    PartialPivLU lu(a);
    if (lu.ok())
        return lu.solve(b);
    return std::nullopt;
}

std::optional<VecX>
solveSpd(const MatX &a, const VecX &b)
{
    Cholesky chol(a);
    if (chol.ok())
        return chol.solve(b);
    PartialPivLU lu(a);
    if (lu.ok())
        return lu.solve(b);
    return std::nullopt;
}

std::optional<MatX>
invertBlockDiagonalSymmetric(const MatX &m, int diag_n)
{
    assert(m.rows() == m.cols());
    const int n = m.rows();
    assert(diag_n >= 0 && diag_n <= n);
    const int dn = n - diag_n;

    // M = [A B; B^T D], A diagonal. Using the block inversion identity:
    //   S = D - B^T A^{-1} B            (Schur complement, dn x dn)
    //   M^{-1} = [A^{-1} + A^{-1} B S^{-1} B^T A^{-1},  -A^{-1} B S^{-1};
    //             -S^{-1} B^T A^{-1},                    S^{-1}]
    VecX ainv(diag_n);
    for (int i = 0; i < diag_n; ++i) {
        double d = m(i, i);
        if (std::abs(d) < 1e-300)
            return std::nullopt;
        ainv[i] = 1.0 / d;
    }

    MatX b(diag_n, dn);
    for (int i = 0; i < diag_n; ++i)
        for (int j = 0; j < dn; ++j)
            b(i, j) = m(i, diag_n + j);

    // AinvB = A^{-1} B (row scaling, exploiting the diagonal structure).
    MatX ainv_b = b;
    for (int i = 0; i < diag_n; ++i)
        for (int j = 0; j < dn; ++j)
            ainv_b(i, j) *= ainv[i];

    MatX d = m.block(diag_n, diag_n, dn, dn);
    MatX s = d;
    // S = D - B^T (A^{-1} B)
    for (int i = 0; i < dn; ++i)
        for (int j = 0; j < dn; ++j) {
            double acc = 0.0;
            for (int k = 0; k < diag_n; ++k)
                acc += b(k, i) * ainv_b(k, j);
            s(i, j) -= acc;
        }

    PartialPivLU lu(s);
    if (!lu.ok())
        return std::nullopt;
    MatX sinv = lu.inverse();

    MatX out(n, n);
    // Top-left: A^{-1} + (A^{-1}B) S^{-1} (A^{-1}B)^T
    MatX t = ainv_b * sinv; // diag_n x dn
    for (int i = 0; i < diag_n; ++i) {
        for (int j = 0; j < diag_n; ++j) {
            double acc = 0.0;
            for (int k = 0; k < dn; ++k)
                acc += t(i, k) * ainv_b(j, k);
            out(i, j) = acc;
        }
        out(i, i) += ainv[i];
    }
    // Top-right / bottom-left: -A^{-1} B S^{-1}
    for (int i = 0; i < diag_n; ++i)
        for (int j = 0; j < dn; ++j) {
            out(i, diag_n + j) = -t(i, j);
            out(diag_n + j, i) = -t(i, j);
        }
    // Bottom-right: S^{-1}
    out.setBlock(diag_n, diag_n, sinv);
    return out;
}

} // namespace edx
