#include "math/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "math/aligned_alloc.hpp"
#include "math/simd_util.hpp"

namespace edx {

using detail::axpyRow;
using detail::divRow;
using detail::dotRows;
using detail::scaleRow;

namespace {

// Panel widths of the blocked factorizations. Sized so a panel times a
// ~200-dim trailing block (the MSCKF compression shape) stays cache
// resident; tests sweep well past both in either direction.
constexpr int kCholeskyNb = 32;
constexpr int kQrNb = 32;

} // namespace

// --- Cholesky (blocked) ------------------------------------------------

bool
Cholesky::compute(const MatX &a)
{
    assert(a.rows() == a.cols());
    const int n = a.rows();
    ok_ = false;
    l_.resize(n, n);
    for (int i = 0; i < n; ++i) {
        const double *src = a.data() + static_cast<size_t>(i) * n;
        double *dst = l_.data() + static_cast<size_t>(i) * n;
        std::copy(src, src + i + 1, dst);
    }

    // Left-looking panels: the bulk of the work is the row-dot trailing
    // update (a GEMM-shaped sweep), the panel factor itself is short.
    for (int p0 = 0; p0 < n; p0 += kCholeskyNb) {
        const int p1 = std::min(p0 + kCholeskyNb, n);
        if (p0 > 0) {
            for (int i = p0; i < n; ++i) {
                double *li = l_.data() + static_cast<size_t>(i) * n;
                const int jmax = std::min(p1, i + 1);
                for (int j = p0; j < jmax; ++j)
                    li[j] -= dotRows(
                        li, l_.data() + static_cast<size_t>(j) * n, p0);
            }
        }
        for (int j = p0; j < p1; ++j) {
            double *lj = l_.data() + static_cast<size_t>(j) * n;
            double d = lj[j] - dotRows(lj + p0, lj + p0, j - p0);
            if (d <= 0.0 || !std::isfinite(d))
                return false;
            const double ljj = std::sqrt(d);
            lj[j] = ljj;
            for (int i = j + 1; i < n; ++i) {
                double *li = l_.data() + static_cast<size_t>(i) * n;
                li[j] = (li[j] - dotRows(li + p0, lj + p0, j - p0)) / ljj;
            }
        }
    }
    ok_ = true;
    return true;
}

void
Cholesky::solveInPlace(VecX &b) const
{
    assert(ok_);
    const int n = l_.rows();
    assert(b.size() == n);
    for (int i = 0; i < n; ++i) {
        const double *li = l_.data() + static_cast<size_t>(i) * n;
        double s = b[i];
        for (int j = 0; j < i; ++j)
            s -= li[j] * b[j];
        b[i] = s / li[i];
    }
    for (int i = n - 1; i >= 0; --i) {
        double s = b[i];
        for (int j = i + 1; j < n; ++j)
            s -= l_(j, i) * b[j];
        b[i] = s / l_(i, i);
    }
}

VecX
Cholesky::solve(const VecX &b) const
{
    VecX x = b;
    solveInPlace(x);
    return x;
}

void
Cholesky::solveInPlace(MatX &b) const
{
    assert(ok_);
    const int n = l_.rows();
    assert(b.rows() == n);
    const int nc = b.cols();
    // Forward L Y = B, then backward L^T X = Y; both row-oriented, so
    // every right-hand side streams contiguously (no column walks).
    for (int i = 0; i < n; ++i) {
        double *bi = b.data() + static_cast<size_t>(i) * nc;
        const double *li = l_.data() + static_cast<size_t>(i) * n;
        for (int j = 0; j < i; ++j)
            axpyRow(-li[j], b.data() + static_cast<size_t>(j) * nc, bi,
                    nc);
        divRow(li[i], bi, nc);
    }
    for (int i = n - 1; i >= 0; --i) {
        double *bi = b.data() + static_cast<size_t>(i) * nc;
        for (int j = i + 1; j < n; ++j)
            axpyRow(-l_(j, i), b.data() + static_cast<size_t>(j) * nc,
                    bi, nc);
        divRow(l_(i, i), bi, nc);
    }
}

MatX
Cholesky::solve(const MatX &b) const
{
    MatX x = b;
    solveInPlace(x);
    return x;
}

double
Cholesky::logDeterminant() const
{
    assert(ok_);
    double s = 0.0;
    for (int i = 0; i < l_.rows(); ++i)
        s += std::log(l_(i, i));
    return 2.0 * s;
}

// --- CholeskyReference (retained seed algorithm) -----------------------

bool
CholeskyReference::compute(const MatX &a)
{
    assert(a.rows() == a.cols());
    const int n = a.rows();
    ok_ = false;
    l_ = MatX(n, n);
    for (int j = 0; j < n; ++j) {
        double d = a(j, j);
        for (int k = 0; k < j; ++k)
            d -= l_(j, k) * l_(j, k);
        if (d <= 0.0 || !std::isfinite(d))
            return false;
        double lj = std::sqrt(d);
        l_(j, j) = lj;
        for (int i = j + 1; i < n; ++i) {
            double s = a(i, j);
            for (int k = 0; k < j; ++k)
                s -= l_(i, k) * l_(j, k);
            l_(i, j) = s / lj;
        }
    }
    ok_ = true;
    return true;
}

VecX
CholeskyReference::solve(const VecX &b) const
{
    assert(ok_);
    VecX y = forwardSubstitute(l_, b);
    const int n = l_.rows();
    VecX x(n);
    for (int i = n - 1; i >= 0; --i) {
        double s = y[i];
        for (int j = i + 1; j < n; ++j)
            s -= l_(j, i) * x[j];
        x[i] = s / l_(i, i);
    }
    return x;
}

MatX
CholeskyReference::solve(const MatX &b) const
{
    assert(ok_);
    MatX x(b.rows(), b.cols());
    for (int c = 0; c < b.cols(); ++c) {
        VecX col(b.rows());
        for (int r = 0; r < b.rows(); ++r)
            col[r] = b(r, c);
        VecX sol = solve(col);
        for (int r = 0; r < b.rows(); ++r)
            x(r, c) = sol[r];
    }
    return x;
}

// --- PartialPivLU ------------------------------------------------------

bool
PartialPivLU::compute(const MatX &a)
{
    assert(a.rows() == a.cols());
    const int n = a.rows();
    lu_.resizeNoInit(n, n); // fully overwritten by the copy below
    std::copy(a.data(), a.data() + static_cast<size_t>(n) * n,
              lu_.data());
    perm_.resize(n);
    for (int i = 0; i < n; ++i)
        perm_[i] = i;
    sign_ = 1;

    ok_ = true;
    for (int k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude in column k.
        int piv = k;
        double best = std::abs(lu_(k, k));
        for (int i = k + 1; i < n; ++i) {
            double v = std::abs(lu_(i, k));
            if (v > best) {
                best = v;
                piv = i;
            }
        }
        if (best < 1e-300 || !std::isfinite(best)) {
            ok_ = false;
            return false;
        }
        if (piv != k) {
            for (int c = 0; c < n; ++c)
                std::swap(lu_(k, c), lu_(piv, c));
            std::swap(perm_[k], perm_[piv]);
            sign_ = -sign_;
        }
        const double inv = 1.0 / lu_(k, k);
        const double *rowk = lu_.data() + static_cast<size_t>(k) * n;
        const int len = n - k - 1;
        const double *pivot = rowk + k + 1;
#if defined(EDX_HAVE_AVX2)
        // The pivot-row segment is streamed once per trailing row: copy
        // it to a 32B-aligned scratch so every one of those reads runs
        // on an aligned source (the blas.cpp packed-operand idiom).
        // Values are untouched and axpyRow is order-preserving, so the
        // update stays bit-exact vs the unpacked path at every tier.
        // Gated to the wide trailing blocks where the one-row copy is
        // amortized over many rows.
        static thread_local AlignedVector<double> pivot_pack;
        if (simdTierIsAvx2() && len >= 16) {
            pivot_pack.resize(static_cast<size_t>(len));
            std::memcpy(pivot_pack.data(), rowk + k + 1,
                        static_cast<size_t>(len) * sizeof(double));
            pivot = pivot_pack.data();
        }
#endif
        for (int i = k + 1; i < n; ++i) {
            double *rowi = lu_.data() + static_cast<size_t>(i) * n;
            const double m = rowi[k] * inv;
            rowi[k] = m;
            // Vectorized rank-1 trailing update; same per-element
            // order as the scalar seed loop (bit-exact).
            axpyRow(-m, pivot, rowi + k + 1, len);
        }
    }
    return true;
}

void
PartialPivLU::solveInto(const VecX &b, VecX &x) const
{
    assert(ok_);
    const int n = lu_.rows();
    assert(b.size() == n);
    x.resize(n);
    for (int i = 0; i < n; ++i)
        x[i] = b[perm_[i]];
    for (int i = 0; i < n; ++i) {
        const double *li = lu_.data() + static_cast<size_t>(i) * n;
        double s = x[i];
        for (int j = 0; j < i; ++j)
            s -= li[j] * x[j];
        x[i] = s;
    }
    for (int i = n - 1; i >= 0; --i) {
        const double *ui = lu_.data() + static_cast<size_t>(i) * n;
        double s = x[i];
        for (int j = i + 1; j < n; ++j)
            s -= ui[j] * x[j];
        x[i] = s / ui[i];
    }
}

VecX
PartialPivLU::solve(const VecX &b) const
{
    VecX x;
    solveInto(b, x);
    return x;
}

void
PartialPivLU::solveInto(const MatX &b, MatX &x) const
{
    assert(ok_);
    const int n = lu_.rows();
    assert(b.rows() == n);
    const int nc = b.cols();
    x.resizeNoInit(n, nc); // every row is written by the permutation
    for (int i = 0; i < n; ++i) {
        const double *src =
            b.data() + static_cast<size_t>(perm_[i]) * nc;
        std::copy(src, src + nc,
                  x.data() + static_cast<size_t>(i) * nc);
    }
    // Unit-lower forward then upper backward, row-oriented.
    for (int i = 0; i < n; ++i) {
        double *xi = x.data() + static_cast<size_t>(i) * nc;
        const double *li = lu_.data() + static_cast<size_t>(i) * n;
        for (int j = 0; j < i; ++j)
            axpyRow(-li[j], x.data() + static_cast<size_t>(j) * nc, xi,
                    nc);
    }
    for (int i = n - 1; i >= 0; --i) {
        double *xi = x.data() + static_cast<size_t>(i) * nc;
        const double *ui = lu_.data() + static_cast<size_t>(i) * n;
        for (int j = i + 1; j < n; ++j)
            axpyRow(-ui[j], x.data() + static_cast<size_t>(j) * nc, xi,
                    nc);
        divRow(ui[i], xi, nc);
    }
}

MatX
PartialPivLU::solve(const MatX &b) const
{
    MatX x;
    solveInto(b, x);
    return x;
}

MatX
PartialPivLU::inverse() const
{
    assert(ok_);
    return solve(MatX::identity(lu_.rows()));
}

double
PartialPivLU::determinant() const
{
    if (!ok_)
        return 0.0;
    double d = sign_;
    for (int i = 0; i < lu_.rows(); ++i)
        d *= lu_(i, i);
    return d;
}

// --- HouseholderQR (blocked, compact WY) -------------------------------

void
HouseholderQR::factorPanel(int p0, int p1)
{
    for (int k = p0; k < p1; ++k) {
        // Build the Householder vector for column k below the diagonal.
        double norm2 = 0.0;
        for (int i = k; i < m_; ++i)
            norm2 += qr_(i, k) * qr_(i, k);
        double alpha = std::sqrt(norm2);
        if (alpha < 1e-300) {
            beta_[k] = 0.0;
            continue;
        }
        if (qr_(k, k) > 0.0)
            alpha = -alpha;
        double v0 = qr_(k, k) - alpha;
        double vnorm2 = v0 * v0;
        for (int i = k + 1; i < m_; ++i)
            vnorm2 += qr_(i, k) * qr_(i, k);
        beta_[k] = (vnorm2 > 0.0) ? 2.0 / vnorm2 : 0.0;

        // Apply the reflector to the remaining columns of this panel
        // only; the trailing matrix is updated blockwise afterwards.
        for (int c = k + 1; c < p1; ++c) {
            double s = v0 * qr_(k, c);
            for (int i = k + 1; i < m_; ++i)
                s += qr_(i, k) * qr_(i, c);
            s *= beta_[k];
            qr_(k, c) -= s * v0;
            for (int i = k + 1; i < m_; ++i)
                qr_(i, c) -= s * qr_(i, k);
        }
        qr_(k, k) = alpha;
        // Store v (below diagonal) normalized by v0 so the implicit
        // head of the vector is exactly 1.
        if (v0 != 0.0) {
            for (int i = k + 1; i < m_; ++i)
                qr_(i, k) /= v0;
            beta_[k] *= v0 * v0;
        } else {
            for (int i = k + 1; i < m_; ++i)
                qr_(i, k) = 0.0;
        }
    }
}

void
HouseholderQR::applyPanelToTrailing(int p0, int p1)
{
    const int nb = p1 - p0;
    const int nt = n_ - p1;

    // Compact WY: H_{p0} ... H_{p1-1} = I - V T V^T with V unit lower
    // trapezoidal (stored below the diagonal of the panel columns) and
    // T upper triangular, built by the standard recurrence.
    t_.resize(nb, nb);
    z_.resize(nb);
    for (int c = 0; c < nb; ++c) {
        const int k = p0 + c;
        const double bk = beta_[k];
        if (bk == 0.0)
            continue; // identity reflector: zero column of T
        for (int cp = 0; cp < c; ++cp) {
            const int kp = p0 + cp;
            // z[cp] = v_{cp}^T v_c over rows [k, m) (v_c head == 1).
            double z = qr_(k, kp);
            for (int i = k + 1; i < m_; ++i)
                z += qr_(i, kp) * qr_(i, k);
            z_[cp] = z;
        }
        for (int r = 0; r < c; ++r) {
            double s = 0.0;
            for (int cp = r; cp < c; ++cp)
                s += t_(r, cp) * z_[cp];
            t_(r, c) = -bk * s;
        }
        t_(c, c) = bk;
    }

    // Q^T B = (I - V T^T V^T) B applied as three sweeps, each streaming
    // the trailing block row-contiguously exactly once.
    //
    // W's rows are the reused operand of all three sweeps (written nb
    // times, read nb^2/2 times, then read nb times per trailing row),
    // so on the AVX2 tier they live in a 32B-aligned scratch with the
    // stride padded up to the 4-double register width — the blas.cpp
    // re-stride idiom. Only addresses change: the sweeps are built
    // purely from the order-preserving axpyRow/scaleRow primitives over
    // the same values and lengths, so the factorization stays bit-exact
    // vs the member-workspace path (and the per-tier golden twins).
    double *w = w_.data();
    size_t wstride = static_cast<size_t>(nt);
#if defined(EDX_HAVE_AVX2)
    static thread_local AlignedVector<double> wpack;
    const bool packed = simdTierIsAvx2() && nt >= 16;
    if (packed) {
        wstride = static_cast<size_t>((nt + 3) & ~3);
        wpack.assign(static_cast<size_t>(nb) * wstride, 0.0);
        w = wpack.data();
    } else {
        w_.resize(nb, nt);
        w = w_.data();
    }
#else
    w_.resize(nb, nt);
    w = w_.data();
#endif
    for (int i = p0; i < m_; ++i) {
        const double *bi =
            qr_.data() + static_cast<size_t>(i) * n_ + p1;
        const int cmax = std::min(i - p0, nb - 1);
        for (int c = 0; c <= cmax; ++c) {
            const int k = p0 + c;
            const double v = (i == k) ? 1.0 : qr_(i, k);
            axpyRow(v, bi, w + static_cast<size_t>(c) * wstride, nt);
        }
    }
    // W <- T^T W in place (rows last-to-first).
    for (int c = nb - 1; c >= 0; --c) {
        double *wc = w + static_cast<size_t>(c) * wstride;
        scaleRow(t_(c, c), wc, nt);
        for (int cp = 0; cp < c; ++cp)
            axpyRow(t_(cp, c), w + static_cast<size_t>(cp) * wstride,
                    wc, nt);
    }
    // B <- B - V W.
    for (int i = p0; i < m_; ++i) {
        double *bi = qr_.data() + static_cast<size_t>(i) * n_ + p1;
        const int cmax = std::min(i - p0, nb - 1);
        for (int c = 0; c <= cmax; ++c) {
            const int k = p0 + c;
            const double v = (i == k) ? 1.0 : qr_(i, k);
            axpyRow(-v, w + static_cast<size_t>(c) * wstride, bi, nt);
        }
    }
}

void
HouseholderQR::compute(const MatX &a)
{
    m_ = a.rows();
    n_ = a.cols();
    assert(m_ >= n_);
    qr_.resizeNoInit(m_, n_); // fully overwritten by the copy below
    std::copy(a.data(), a.data() + static_cast<size_t>(m_) * n_,
              qr_.data());
    beta_.assign(static_cast<size_t>(n_), 0.0);
    r_valid_ = false;

    for (int p0 = 0; p0 < n_; p0 += kQrNb) {
        const int p1 = std::min(p0 + kQrNb, n_);
        factorPanel(p0, p1);
        if (p1 < n_)
            applyPanelToTrailing(p0, p1);
    }
}

void
HouseholderQR::applyHouseholder(VecX &b) const
{
    assert(b.size() == m_);
    for (int k = 0; k < n_; ++k) {
        if (beta_[k] == 0.0)
            continue;
        double s = b[k];
        for (int i = k + 1; i < m_; ++i)
            s += qr_(i, k) * b[i];
        s *= beta_[k];
        b[k] -= s;
        for (int i = k + 1; i < m_; ++i)
            b[i] -= s * qr_(i, k);
    }
}

void
HouseholderQR::qtbInPlace(VecX &b) const
{
    applyHouseholder(b);
}

VecX
HouseholderQR::qtb(const VecX &b) const
{
    VecX r = b;
    applyHouseholder(r);
    return r;
}

void
HouseholderQR::qtbInPlace(MatX &b) const
{
    assert(b.rows() == m_);
    const int nc = b.cols();
    // Row-oriented reflector application: two contiguous passes over
    // the rows of B per reflector, with one scratch row (w_ is free
    // after compute()).
    w_.resize(1, nc);
    double *s = w_.data();
    for (int k = 0; k < n_; ++k) {
        if (beta_[k] == 0.0)
            continue;
        const double *bk = b.data() + static_cast<size_t>(k) * nc;
        std::copy(bk, bk + nc, s);
        for (int i = k + 1; i < m_; ++i)
            axpyRow(qr_(i, k),
                    b.data() + static_cast<size_t>(i) * nc, s, nc);
        scaleRow(beta_[k], s, nc);
        axpyRow(-1.0, s, b.data() + static_cast<size_t>(k) * nc, nc);
        for (int i = k + 1; i < m_; ++i)
            axpyRow(-qr_(i, k), s,
                    b.data() + static_cast<size_t>(i) * nc, nc);
    }
}

MatX
HouseholderQR::qtb(const MatX &b) const
{
    MatX out = b;
    qtbInPlace(out);
    return out;
}

void
HouseholderQR::extractRInto(MatX &r_out) const
{
    r_out.resize(n_, n_);
    for (int i = 0; i < n_; ++i) {
        const double *src =
            qr_.data() + static_cast<size_t>(i) * n_ + i;
        double *dst = r_out.data() + static_cast<size_t>(i) * n_ + i;
        std::copy(src, src + (n_ - i), dst);
    }
}

const MatX &
HouseholderQR::matrixR() const
{
    if (!r_valid_) {
        extractRInto(r_);
        r_valid_ = true;
    }
    return r_;
}

void
HouseholderQR::solveUpperInto(const VecX &y, VecX &x) const
{
    assert(y.size() >= n_);
    x.resize(n_);
    for (int i = n_ - 1; i >= 0; --i) {
        const double *ri = qr_.data() + static_cast<size_t>(i) * n_;
        double s = y[i];
        for (int j = i + 1; j < n_; ++j)
            s -= ri[j] * x[j];
        x[i] = (std::abs(ri[i]) > 1e-300) ? s / ri[i] : 0.0;
    }
}

VecX
HouseholderQR::solve(const VecX &b) const
{
    VecX y = b;
    applyHouseholder(y);
    VecX x;
    solveUpperInto(y, x);
    return x;
}

int
HouseholderQR::rank(double tol) const
{
    int r = 0;
    for (int i = 0; i < n_; ++i) {
        if (std::abs(qr_(i, i)) > tol)
            ++r;
    }
    return r;
}

// --- HouseholderQRReference (retained seed algorithm) ------------------

void
HouseholderQRReference::compute(const MatX &a)
{
    qr_ = a;
    m_ = a.rows();
    n_ = a.cols();
    assert(m_ >= n_);
    beta_.assign(n_, 0.0);

    for (int k = 0; k < n_; ++k) {
        double norm2 = 0.0;
        for (int i = k; i < m_; ++i)
            norm2 += qr_(i, k) * qr_(i, k);
        double alpha = std::sqrt(norm2);
        if (alpha < 1e-300) {
            beta_[k] = 0.0;
            continue;
        }
        if (qr_(k, k) > 0.0)
            alpha = -alpha;
        double v0 = qr_(k, k) - alpha;
        double vnorm2 = v0 * v0;
        for (int i = k + 1; i < m_; ++i)
            vnorm2 += qr_(i, k) * qr_(i, k);
        beta_[k] = (vnorm2 > 0.0) ? 2.0 / vnorm2 : 0.0;

        for (int c = k + 1; c < n_; ++c) {
            double s = v0 * qr_(k, c);
            for (int i = k + 1; i < m_; ++i)
                s += qr_(i, k) * qr_(i, c);
            s *= beta_[k];
            qr_(k, c) -= s * v0;
            for (int i = k + 1; i < m_; ++i)
                qr_(i, c) -= s * qr_(i, k);
        }
        qr_(k, k) = alpha;
        if (v0 != 0.0) {
            for (int i = k + 1; i < m_; ++i)
                qr_(i, k) /= v0;
            beta_[k] *= v0 * v0;
        } else {
            for (int i = k + 1; i < m_; ++i)
                qr_(i, k) = 0.0;
        }
    }

    r_ = MatX(n_, n_);
    for (int i = 0; i < n_; ++i)
        for (int j = i; j < n_; ++j)
            r_(i, j) = qr_(i, j);
}

void
HouseholderQRReference::applyHouseholder(VecX &b) const
{
    assert(b.size() == m_);
    for (int k = 0; k < n_; ++k) {
        if (beta_[k] == 0.0)
            continue;
        double s = b[k];
        for (int i = k + 1; i < m_; ++i)
            s += qr_(i, k) * b[i];
        s *= beta_[k];
        b[k] -= s;
        for (int i = k + 1; i < m_; ++i)
            b[i] -= s * qr_(i, k);
    }
}

VecX
HouseholderQRReference::qtb(const VecX &b) const
{
    VecX r = b;
    applyHouseholder(r);
    return r;
}

MatX
HouseholderQRReference::qtb(const MatX &b) const
{
    assert(b.rows() == m_);
    MatX out(b.rows(), b.cols());
    for (int c = 0; c < b.cols(); ++c) {
        VecX col(b.rows());
        for (int r = 0; r < b.rows(); ++r)
            col[r] = b(r, c);
        applyHouseholder(col);
        for (int r = 0; r < b.rows(); ++r)
            out(r, c) = col[r];
    }
    return out;
}

VecX
HouseholderQRReference::solve(const VecX &b) const
{
    VecX y = qtb(b);
    VecX x(n_);
    for (int i = n_ - 1; i >= 0; --i) {
        double s = y[i];
        for (int j = i + 1; j < n_; ++j)
            s -= r_(i, j) * x[j];
        x[i] = (std::abs(r_(i, i)) > 1e-300) ? s / r_(i, i) : 0.0;
    }
    return x;
}

int
HouseholderQRReference::rank(double tol) const
{
    int r = 0;
    for (int i = 0; i < n_; ++i) {
        if (std::abs(r_(i, i)) > tol)
            ++r;
    }
    return r;
}

// --- Triangular solvers ------------------------------------------------

VecX
forwardSubstitute(const MatX &l, const VecX &b)
{
    assert(l.rows() == l.cols() && l.rows() == b.size());
    const int n = l.rows();
    VecX x(n);
    for (int i = 0; i < n; ++i) {
        double s = b[i];
        for (int j = 0; j < i; ++j)
            s -= l(i, j) * x[j];
        assert(std::abs(l(i, i)) > 0.0);
        x[i] = s / l(i, i);
    }
    return x;
}

void
forwardSubstituteInto(const MatX &l, const MatX &b, MatX &x)
{
    assert(l.rows() == l.cols() && l.rows() == b.rows());
    const int n = l.rows();
    const int nc = b.cols();
    x.resizeNoInit(n, nc); // fully overwritten by the copy below
    std::copy(b.data(), b.data() + static_cast<size_t>(n) * nc,
              x.data());
    for (int i = 0; i < n; ++i) {
        double *xi = x.data() + static_cast<size_t>(i) * nc;
        const double *li = l.data() + static_cast<size_t>(i) * n;
        for (int j = 0; j < i; ++j)
            axpyRow(-li[j], x.data() + static_cast<size_t>(j) * nc, xi,
                    nc);
        assert(std::abs(li[i]) > 0.0);
        divRow(li[i], xi, nc);
    }
}

MatX
forwardSubstitute(const MatX &l, const MatX &b)
{
    MatX x;
    forwardSubstituteInto(l, b, x);
    return x;
}

VecX
backwardSubstitute(const MatX &u, const VecX &b)
{
    assert(u.rows() == u.cols() && u.rows() == b.size());
    const int n = u.rows();
    VecX x(n);
    for (int i = n - 1; i >= 0; --i) {
        double s = b[i];
        for (int j = i + 1; j < n; ++j)
            s -= u(i, j) * x[j];
        assert(std::abs(u(i, i)) > 0.0);
        x[i] = s / u(i, i);
    }
    return x;
}

void
backwardSubstituteInto(const MatX &u, const MatX &b, MatX &x)
{
    assert(u.rows() == u.cols() && u.rows() == b.rows());
    const int n = u.rows();
    const int nc = b.cols();
    x.resizeNoInit(n, nc); // fully overwritten by the copy below
    std::copy(b.data(), b.data() + static_cast<size_t>(n) * nc,
              x.data());
    for (int i = n - 1; i >= 0; --i) {
        double *xi = x.data() + static_cast<size_t>(i) * nc;
        const double *ui = u.data() + static_cast<size_t>(i) * n;
        for (int j = i + 1; j < n; ++j)
            axpyRow(-ui[j], x.data() + static_cast<size_t>(j) * nc, xi,
                    nc);
        assert(std::abs(ui[i]) > 0.0);
        divRow(ui[i], xi, nc);
    }
}

MatX
backwardSubstitute(const MatX &u, const MatX &b)
{
    MatX x;
    backwardSubstituteInto(u, b, x);
    return x;
}

std::optional<MatX>
solveSpd(const MatX &a, const MatX &b)
{
    Cholesky chol(a);
    if (chol.ok())
        return chol.solve(b);
    PartialPivLU lu(a);
    if (lu.ok())
        return lu.solve(b);
    return std::nullopt;
}

std::optional<VecX>
solveSpd(const MatX &a, const VecX &b)
{
    Cholesky chol(a);
    if (chol.ok())
        return chol.solve(b);
    PartialPivLU lu(a);
    if (lu.ok())
        return lu.solve(b);
    return std::nullopt;
}

std::optional<MatX>
invertBlockDiagonalSymmetric(const MatX &m, int diag_n)
{
    assert(m.rows() == m.cols());
    const int n = m.rows();
    assert(diag_n >= 0 && diag_n <= n);
    const int dn = n - diag_n;

    // M = [A B; B^T D], A diagonal. Using the block inversion identity:
    //   S = D - B^T A^{-1} B            (Schur complement, dn x dn)
    //   M^{-1} = [A^{-1} + A^{-1} B S^{-1} B^T A^{-1},  -A^{-1} B S^{-1};
    //             -S^{-1} B^T A^{-1},                    S^{-1}]
    VecX ainv(diag_n);
    for (int i = 0; i < diag_n; ++i) {
        double d = m(i, i);
        if (std::abs(d) < 1e-300)
            return std::nullopt;
        ainv[i] = 1.0 / d;
    }

    MatX b(diag_n, dn);
    for (int i = 0; i < diag_n; ++i)
        for (int j = 0; j < dn; ++j)
            b(i, j) = m(i, diag_n + j);

    // AinvB = A^{-1} B (row scaling, exploiting the diagonal structure).
    MatX ainv_b = b;
    for (int i = 0; i < diag_n; ++i)
        for (int j = 0; j < dn; ++j)
            ainv_b(i, j) *= ainv[i];

    MatX d = m.block(diag_n, diag_n, dn, dn);
    MatX s = d;
    // S = D - B^T (A^{-1} B)
    for (int i = 0; i < dn; ++i)
        for (int j = 0; j < dn; ++j) {
            double acc = 0.0;
            for (int k = 0; k < diag_n; ++k)
                acc += b(k, i) * ainv_b(k, j);
            s(i, j) -= acc;
        }

    PartialPivLU lu(s);
    if (!lu.ok())
        return std::nullopt;
    MatX sinv = lu.inverse();

    MatX out(n, n);
    // Top-left: A^{-1} + (A^{-1}B) S^{-1} (A^{-1}B)^T
    MatX t = ainv_b * sinv; // diag_n x dn
    for (int i = 0; i < diag_n; ++i) {
        for (int j = 0; j < diag_n; ++j) {
            double acc = 0.0;
            for (int k = 0; k < dn; ++k)
                acc += t(i, k) * ainv_b(j, k);
            out(i, j) = acc;
        }
        out(i, i) += ainv[i];
    }
    // Top-right / bottom-left: -A^{-1} B S^{-1}
    for (int i = 0; i < diag_n; ++i)
        for (int j = 0; j < dn; ++j) {
            out(i, diag_n + j) = -t(i, j);
            out(diag_n + j, i) = -t(i, j);
        }
    // Bottom-right: S^{-1}
    out.setBlock(diag_n, diag_n, sinv);
    return out;
}

} // namespace edx
