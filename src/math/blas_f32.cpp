#include "math/blas_f32.hpp"

#include <cmath>
#include <emmintrin.h>

#include "math/cpu_features.hpp"
#if defined(EDX_HAVE_AVX2)
#include "math/simd_avx2.hpp"
#endif

namespace edx {
namespace f32 {

namespace {

inline float
hsum(__m128 v)
{
    __m128 t = _mm_add_ps(v, _mm_movehl_ps(v, v));
    t = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55));
    return _mm_cvtss_f32(t);
}

/** Row dot product; SSE baseline with an AVX2 fast path. */
inline float
dotF32(const float *a, const float *b, int n)
{
#if defined(EDX_HAVE_AVX2)
    if (simdTierIsAvx2())
        return avx2::dotRowsF32(a, b, n);
#endif
    __m128 acc0 = _mm_setzero_ps();
    __m128 acc1 = _mm_setzero_ps();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i),
                                           _mm_loadu_ps(b + i)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_loadu_ps(a + i + 4),
                                           _mm_loadu_ps(b + i + 4)));
    }
    for (; i + 4 <= n; i += 4)
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i),
                                           _mm_loadu_ps(b + i)));
    float s = hsum(_mm_add_ps(acc0, acc1));
    for (; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

/** y += a * x; SSE baseline with an AVX2 fast path. */
inline void
axpyF32(float a, const float *x, float *y, int n)
{
#if defined(EDX_HAVE_AVX2)
    if (simdTierIsAvx2()) {
        avx2::axpyRowF32(a, x, y, n);
        return;
    }
#endif
    const __m128 va = _mm_set1_ps(a);
    int i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(y + i,
                      _mm_add_ps(_mm_loadu_ps(y + i),
                                 _mm_mul_ps(va, _mm_loadu_ps(x + i))));
    for (; i < n; ++i)
        y[i] += a * x[i];
}

} // namespace

void
pack(const MatX &src, AlignedVector<float> &dst)
{
    const size_t n = static_cast<size_t>(src.rows()) * src.cols();
    dst.resize(n);
    const double *s = src.data();
    for (size_t i = 0; i < n; ++i)
        dst[i] = static_cast<float>(s[i]);
}

void
sandwich(const float *h, const float *p, int r, int d,
         AlignedVector<float> &hp, AlignedVector<float> &s)
{
    hp.assign(static_cast<size_t>(r) * d, 0.0f);
    s.resize(static_cast<size_t>(r) * r);
    // hp = h * p, accumulated row-wise so the inner loop streams whole
    // rows of p. The compressed measurement Jacobian is upper
    // trapezoidal, so the zero skip removes roughly half the work.
    for (int i = 0; i < r; ++i) {
        float *hpi = hp.data() + static_cast<size_t>(i) * d;
        const float *hi = h + static_cast<size_t>(i) * d;
        for (int k = 0; k < d; ++k) {
            const float av = hi[k];
            if (av != 0.0f)
                axpyF32(av, p + static_cast<size_t>(k) * d, hpi, d);
        }
    }
    // s lower triangle = hp * h^T.
    for (int i = 0; i < r; ++i) {
        const float *hpi = hp.data() + static_cast<size_t>(i) * d;
        float *si = s.data() + static_cast<size_t>(i) * r;
        for (int j = 0; j <= i; ++j)
            si[j] = dotF32(hpi, h + static_cast<size_t>(j) * d, d);
    }
}

bool
choleskyLower(float *a, int n)
{
    for (int j = 0; j < n; ++j) {
        float *aj = a + static_cast<size_t>(j) * n;
        const float djj = aj[j] - dotF32(aj, aj, j);
        if (!(djj > 0.0f) || !std::isfinite(djj))
            return false;
        const float ljj = std::sqrt(djj);
        aj[j] = ljj;
        for (int i = j + 1; i < n; ++i) {
            float *ai = a + static_cast<size_t>(i) * n;
            ai[j] = (ai[j] - dotF32(ai, aj, j)) / ljj;
        }
    }
    return true;
}

void
choleskySolveInPlace(const float *l, int n, float *b, int nc)
{
    // Forward: L y = b, row-oriented so each inner step is a full-row
    // axpy over the right-hand-side columns.
    for (int i = 0; i < n; ++i) {
        const float *li = l + static_cast<size_t>(i) * n;
        float *bi = b + static_cast<size_t>(i) * nc;
        for (int j = 0; j < i; ++j)
            axpyF32(-li[j], b + static_cast<size_t>(j) * nc, bi, nc);
        const float lii = li[i];
        for (int c = 0; c < nc; ++c)
            bi[c] /= lii;
    }
    // Backward: L^T x = y (reads column i of L).
    for (int i = n - 1; i >= 0; --i) {
        float *bi = b + static_cast<size_t>(i) * nc;
        for (int j = i + 1; j < n; ++j)
            axpyF32(-l[static_cast<size_t>(j) * n + i],
                    b + static_cast<size_t>(j) * nc, bi, nc);
        const float lii = l[static_cast<size_t>(i) * n + i];
        for (int c = 0; c < nc; ++c)
            bi[c] /= lii;
    }
}

void
downdateTerm(const float *a, const float *b, int m, int n,
             AlignedVector<float> &t)
{
    t.assign(static_cast<size_t>(n) * n, 0.0f);
    // t += a_k^T outer b_k per row k, lower triangle only (row i of t
    // needs columns [0, i]).
    for (int k = 0; k < m; ++k) {
        const float *ak = a + static_cast<size_t>(k) * n;
        const float *bk = b + static_cast<size_t>(k) * n;
        for (int i = 0; i < n; ++i) {
            const float av = ak[i];
            if (av != 0.0f)
                axpyF32(av, bk, t.data() + static_cast<size_t>(i) * n,
                        i + 1);
        }
    }
}

} // namespace f32
} // namespace edx
